// Package sched places the partitions of a disk-backed corpus onto
// evaluation workers and folds their shard state into one report set —
// the remote-evaluation layer of DESIGN.md §9.
//
// The manifest is the placement unit and the partition store the
// shipping form: each partition is handed to a worker (in-process
// Loopback, or a cmd/bskyworker daemon over the XRPC transport) either
// as a store reference the worker opens locally or as its framed
// block-file bytes shipped inline. The worker runs the engine's
// level-one sharded traversal and returns serialized shard state
// (analysis.MarshalPartitionState); the scheduler decodes it into a
// Source, so partitions evaluated remotely compose under
// analysis.MultiSource exactly like disk, batch, and stream partitions
// — and the folded output is byte-identical to the local out-of-core
// run at any worker count.
//
// Failure handling: a worker that errors (dead endpoint, rejected
// request, undecodable or mismatched state) is marked unhealthy and
// skipped for the rest of the run; its partition retries on the
// remaining workers and, when every worker has failed it, falls back
// to the local out-of-core traversal (analysis.DiskSource semantics) —
// so killing a worker mid-run degrades throughput, never correctness.
package sched

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/xrpc"
)

// Worker evaluates one partition per call: it receives an encoded
// EvalRequest and returns the partition's serialized shard state.
type Worker interface {
	// Name labels the worker in errors and logs.
	Name() string
	// Eval runs one partition evaluation.
	Eval(ctx context.Context, req []byte) ([]byte, error)
}

// FormatsWorker is the optional Worker capability that reports which
// partition block-file formats the worker reads. Workers that don't
// implement it — or whose query fails — are treated as format-1-only,
// which is always safe: every build reads format 1.
type FormatsWorker interface {
	BlockFormats(ctx context.Context) ([]int, error)
}

// DialTimeout bounds one remote partition evaluation end to end.
const DialTimeout = 10 * time.Minute

// xrpcWorker speaks the worker protocol over HTTP.
type xrpcWorker struct {
	name string
	c    *xrpc.Client
}

// Dial returns a Worker for a bskyworker daemon at addr
// ("host:port" or a full http:// base URL).
func Dial(addr string) Worker {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := xrpc.NewClient(base)
	c.HTTPClient.Timeout = DialTimeout
	return &xrpcWorker{name: addr, c: c}
}

func (w *xrpcWorker) Name() string { return w.name }

func (w *xrpcWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	return w.c.ProcedureRaw(ctx, NSIDEvalPartition, nil, ContentTypeCBOR, req)
}

// BlockFormats implements FormatsWorker by asking the daemon's
// describe query. A pre-v2 daemon answers without a formats field;
// that means it predates the columnar codec and reads only format 1.
func (w *xrpcWorker) BlockFormats(ctx context.Context) ([]int, error) {
	var dr DescribeResponse
	if err := w.c.Query(ctx, NSIDDescribe, nil, &dr); err != nil {
		return nil, err
	}
	if len(dr.Formats) == 0 {
		return []int{1}, nil
	}
	return dr.Formats, nil
}

// Scheduler places a corpus' partitions onto workers. Construct with
// New; one Scheduler drives one evaluation run's placement (health
// marks are per-run state).
type Scheduler struct {
	// Corpus is the opened local store: the source of shipped blocks,
	// the authority on placement (manifest bases and record counts),
	// and the fallback execution site.
	Corpus *core.Corpus
	// Workers are the placement targets, tried round-robin by
	// partition index.
	Workers []Worker
	// ShipBlocks streams each partition's framed block bytes inside the
	// request instead of sending a store reference — required when
	// workers cannot reach the store path.
	ShipBlocks bool
	// EvalWorkers fixes the traversal worker count per remote
	// evaluation (0 = inherit the run's worker setting).
	EvalWorkers int
	// NoFallback disables the local out-of-core fallback; a partition
	// every worker failed then fails the run.
	NoFallback bool
	// Logf receives placement diagnostics — a worker being retired, a
	// partition degrading to local evaluation. nil logs via log.Printf:
	// a silently-degraded distributed run must not look like a healthy
	// one. Set to a no-op to silence.
	Logf func(format string, args ...any)

	// shipLimit overrides MaxShipBytes (tests); 0 = MaxShipBytes.
	shipLimit int

	initOnce  sync.Once
	unhealthy []atomic.Bool
	// formats caches each worker's highest readable block format,
	// resolved lazily through FormatsWorker (0 = not yet queried). A
	// worker pinned at a lower format than the store gets its shipped
	// blocks transcoded down; in store-reference mode it is retired,
	// since the store bytes can't be rewritten per worker.
	formats []atomic.Int32
	// slots bounds in-flight partition evaluations to the worker count:
	// remote partitions skip MultiSource's local CPU cap (Offloaded),
	// so without this a ship-blocks run would hold every partition's
	// block bytes in memory at once and flood each worker with
	// unbounded concurrent evaluations. Local fallbacks hold a slot
	// too, keeping total concurrency bounded even with the fleet gone.
	slots chan struct{}
}

// init sizes the per-run placement state; lazy so a Scheduler built as
// a struct literal (every configuration field is exported) behaves
// exactly like one from New.
func (s *Scheduler) init() {
	s.initOnce.Do(func() {
		if s.unhealthy == nil {
			s.unhealthy = make([]atomic.Bool, len(s.Workers))
		}
		if s.formats == nil {
			s.formats = make([]atomic.Int32, len(s.Workers))
		}
		if s.slots == nil {
			s.slots = make(chan struct{}, max(1, len(s.Workers)))
		}
	})
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// New builds a scheduler over an opened store and its workers.
func New(c *core.Corpus, workers ...Worker) *Scheduler {
	return &Scheduler{Corpus: c, Workers: workers}
}

// Sources wraps every partition of the corpus as a RemoteSource, in
// manifest order — the placement input to analysis.MultiSource.
func (s *Scheduler) Sources() []analysis.Source {
	out := make([]analysis.Source, 0, len(s.Corpus.Manifest.Partitions))
	for k := range s.Corpus.Manifest.Partitions {
		out = append(out, &RemoteSource{sched: s, part: k})
	}
	return out
}

// RunAll evaluates the whole corpus through the scheduler and returns
// the reports in canonical order — the remote counterpart of
// analysis.RunAllDisk, byte-identical to it by the parity contract.
func (s *Scheduler) RunAll(workers int) ([]*analysis.Report, error) {
	ms := &analysis.MultiSource{Sources: s.Sources(), Manifest: s.Corpus.Manifest}
	reports, err := analysis.NewFullEngine().Workers(workers).RunSource(ms)
	if err != nil {
		return nil, err
	}
	return analysis.Canonicalize(reports), nil
}

// markUnhealthy retires worker wi for the rest of the run, reporting
// whether this call was the one that flipped it (concurrent partitions
// can discover the same dead worker; only the first logs).
func (s *Scheduler) markUnhealthy(wi int) bool {
	return wi < len(s.unhealthy) && s.unhealthy[wi].CompareAndSwap(false, true)
}

func (s *Scheduler) isHealthy(wi int) bool {
	return wi < len(s.unhealthy) && !s.unhealthy[wi].Load()
}

// anyHealthy reports whether at least one worker is still placeable.
func (s *Scheduler) anyHealthy() bool {
	for wi := range s.Workers {
		if s.isHealthy(wi) {
			return true
		}
	}
	return false
}

// maxShip is the effective ship-size bound.
func (s *Scheduler) maxShip() int {
	if s.shipLimit > 0 {
		return s.shipLimit
	}
	return MaxShipBytes
}

// storeFormat is the corpus' block format (manifest-declared; stores
// written before versioned manifests count as format 1).
func (s *Scheduler) storeFormat() int {
	if s.Corpus.Version < 1 {
		return 1
	}
	return s.Corpus.Version
}

// workerFormat resolves — and caches for the run — worker wi's highest
// readable block format, clamped to what this build can produce. A
// failed query pins the worker at format 1: wasteful (its shipped
// blocks get transcoded down) but never wrong.
func (s *Scheduler) workerFormat(ctx context.Context, wi int) int {
	if v := s.formats[wi].Load(); v > 0 {
		return int(v)
	}
	maxF := 1
	if fw, ok := s.Workers[wi].(FormatsWorker); ok {
		if fs, err := fw.BlockFormats(ctx); err == nil {
			for _, f := range fs {
				if f > maxF && f <= core.DiskFormatVersion {
					maxF = f
				}
			}
		}
	}
	s.formats[wi].Store(int32(maxF))
	return maxF
}

// request builds the EvalRequest for partition part, carrying the
// store's native block bytes when shipping. Per-worker downgrades
// rewrite Blocks afterwards; the rest of the request is shared.
func (s *Scheduler) request(part int, accs []analysis.Accumulator, workers int) (*EvalRequest, error) {
	info := &s.Corpus.Manifest.Partitions[part]
	evalWorkers := s.EvalWorkers
	if evalWorkers <= 0 {
		evalWorkers = workers
	}
	req := &EvalRequest{
		Version:   ProtocolVersion,
		Accs:      analysis.Fingerprint(accs),
		Base:      info.Base,
		Records:   &info.Records,
		Workers:   evalWorkers,
		MaxFormat: core.DiskFormatVersion,
	}
	if s.ShipBlocks {
		blocks, err := ReadPartitionBlocks(s.Corpus, part)
		if err != nil {
			return nil, fmt.Errorf("sched: read partition %d blocks: %w", part, err)
		}
		req.Blocks = blocks
	} else {
		req.Store = s.Corpus.Dir
		req.Partition = part
	}
	return req, nil
}

// evalPartition places one partition: round-robin from its home
// worker, skipping workers already marked unhealthy, marking every
// worker that fails it, and falling back to the local out-of-core
// traversal once no worker remains. State returned by a worker is
// decoded and cross-checked against the manifest's record counts — a
// worker returning plausible-but-wrong state is treated exactly like a
// dead one.
func (s *Scheduler) evalPartition(part int, accs []analysis.Accumulator, workers int) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	s.init()
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	var attempts []string
	// Don't pay for the request — in ShipBlocks mode the whole block
	// file read and encoded — when no worker is left to send it to.
	if n := len(s.Workers); n > 0 && s.anyHealthy() {
		req, err := s.request(part, accs, workers)
		if err != nil {
			return nil, nil, nil, err
		}
		// encoded caches the marshaled request per shipped block format:
		// the store's native format, plus one transcoded downgrade per
		// older format some live worker is pinned at.
		encoded := make(map[int][]byte)
		encodeFor := func(format int) ([]byte, error) {
			if b, ok := encoded[format]; ok {
				return b, nil
			}
			r := *req
			if s.ShipBlocks && format < s.storeFormat() {
				blocks, terr := core.TranscodePartitionBlocks(req.Blocks, format)
				if terr != nil {
					return nil, fmt.Errorf("sched: transcode partition %d blocks to format v%d: %w", part, format, terr)
				}
				r.Blocks = blocks
			}
			b, merr := cbor.Marshal(&r)
			if merr != nil {
				return nil, merr
			}
			encoded[format] = b
			return b, nil
		}
		native, err := encodeFor(s.storeFormat())
		if err != nil {
			return nil, nil, nil, err
		}
		limit := s.maxShip()
		if s.ShipBlocks && len(native) > limit {
			// A partition too big to ship is this partition's problem,
			// not the fleet's: every worker would reject the body, and
			// retiring them all would degrade the rest of the run too.
			if s.NoFallback {
				return nil, nil, nil, fmt.Errorf("sched: partition %d request of %d bytes exceeds the %d-byte ship bound", part, len(native), limit)
			}
			s.logf("sched: partition %d request (%d bytes) exceeds the %d-byte ship bound; evaluating locally", part, len(native), limit)
			return analysis.NewDiskSource(s.Corpus, part).Run(accs, workers, nil)
		}
		info := &s.Corpus.Manifest.Partitions[part]
		retire := func(wi int, msg string) {
			if s.markUnhealthy(wi) {
				s.logf("sched: retiring worker %s after partition %d: %s", s.Workers[wi].Name(), part, msg)
			}
			attempts = append(attempts, fmt.Sprintf("%s: %s", s.Workers[wi].Name(), msg))
		}
		for attempt := 0; attempt < n; attempt++ {
			wi := (part + attempt) % n
			if !s.isHealthy(wi) {
				continue
			}
			w := s.Workers[wi]
			wf := s.workerFormat(context.Background(), wi)
			if !s.ShipBlocks && s.storeFormat() > wf {
				// The worker would open the store and fail on every block
				// file; the store bytes can't be rewritten per worker, so
				// the worker is out for the run.
				retire(wi, fmt.Sprintf("store is block format v%d but the worker reads ≤ v%d", s.storeFormat(), wf))
				continue
			}
			body := native
			if s.ShipBlocks && wf < s.storeFormat() {
				body, err = encodeFor(wf)
				if err != nil {
					return nil, nil, nil, err
				}
				if len(body) > limit {
					retire(wi, fmt.Sprintf("downgraded format-v%d request of %d bytes exceeds the %d-byte ship bound", wf, len(body), limit))
					continue
				}
			}
			state, err := w.Eval(context.Background(), body)
			if err != nil {
				retire(wi, err.Error())
				continue
			}
			world, shards, tables, err := analysis.UnmarshalPartitionState(accs, state)
			if err != nil {
				retire(wi, err.Error())
				continue
			}
			if got := world.Counts(); got != info.Records {
				retire(wi, fmt.Sprintf("returned %+v records but the manifest promises %+v", got, info.Records))
				continue
			}
			return world, shards, tables, nil
		}
	}
	if s.NoFallback {
		return nil, nil, nil, fmt.Errorf("sched: partition %d failed on every worker: %s", part, strings.Join(attempts, "; "))
	}
	// Every worker is gone (or none were configured): evaluate the
	// partition locally, out of core, exactly as RunAllDisk would.
	s.logf("sched: partition %d degrading to local out-of-core evaluation (no healthy workers)", part)
	return analysis.NewDiskSource(s.Corpus, part).Run(accs, workers, nil)
}

// RemoteSource is one partition placed through the scheduler. It
// implements analysis.Source, so remote partitions mix with disk,
// batch, and stream partitions under one MultiSource — the locality of
// a partition is invisible above the Source interface.
type RemoteSource struct {
	sched *Scheduler
	part  int
}

// NewRemoteSource wraps one partition of the scheduler's corpus.
func NewRemoteSource(s *Scheduler, part int) *RemoteSource {
	return &RemoteSource{sched: s, part: part}
}

// Run implements analysis.Source.
func (r *RemoteSource) Run(accs []analysis.Accumulator, workers int, _ analysis.RenderFunc) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	return r.sched.evalPartition(r.part, accs, workers)
}

// Offloaded implements analysis.OffloadedSource: the traversal runs on
// a worker, so MultiSource must not spend a local CPU slot waiting on
// it. (The local fallback after total worker loss does burn local CPU
// without a slot — acceptable in an already-degraded run.)
func (r *RemoteSource) Offloaded() bool { return true }
