// Package sched places the partitions of a disk-backed corpus onto
// evaluation workers and folds their shard state into one report set —
// the remote-evaluation layer of DESIGN.md §9.
//
// The manifest is the placement unit and the partition store the
// shipping form: each partition is handed to a worker (in-process
// Loopback, or a cmd/bskyworker daemon over the XRPC transport) either
// as a store reference the worker opens locally or as its framed
// block-file bytes shipped inline. The worker runs the engine's
// level-one sharded traversal and returns serialized shard state
// (analysis.MarshalPartitionState); the scheduler decodes it into a
// Source, so partitions evaluated remotely compose under
// analysis.MultiSource exactly like disk, batch, and stream partitions
// — and the folded output is byte-identical to the local out-of-core
// run at any worker count.
//
// Placement is elastic (elastic.go): evaluation units sit in one
// deterministically-ordered pull queue that every healthy worker
// claims from, so a fast worker drains a slow worker's backlog (work
// stealing) instead of idling behind a static round-robin assignment.
// Idle workers speculatively re-execute straggling in-flight units —
// the first valid result wins, and a late duplicate is cross-checked
// byte-for-byte against it. Partitions whose record totals are far
// above the median split into contiguous sub-ranges that evaluate
// independently and fold back into the unsplit partition state. In
// ship-blocks mode workers keep a content-addressed BlockCache of
// shipped payloads (cache.go) keyed by manifest fingerprint, so a
// warm re-run sends key references instead of block bytes, and the
// scheduler prefetches the next unit's blocks into the worker's cache
// while the current evaluation runs.
//
// Failure handling: a worker that errors (dead endpoint, rejected
// request, undecodable or mismatched state) is marked unhealthy and
// skipped for the rest of the run; its units requeue for the
// remaining workers and, when every worker has failed one, it falls
// back to the local out-of-core traversal (analysis.DiskSource
// semantics) — so killing a worker mid-run degrades throughput, never
// correctness.
package sched

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/xrpc"
)

// Worker evaluates one partition per call: it receives an encoded
// EvalRequest and returns the partition's serialized shard state.
type Worker interface {
	// Name labels the worker in errors and logs.
	Name() string
	// Eval runs one partition evaluation.
	Eval(ctx context.Context, req []byte) ([]byte, error)
}

// FormatsWorker is the optional Worker capability that reports which
// partition block-file formats the worker reads. Workers that don't
// implement it — or whose query fails — are treated as format-1-only,
// which is always safe: every build reads format 1.
type FormatsWorker interface {
	BlockFormats(ctx context.Context) ([]int, error)
}

// CacheInfo reports a worker's block-cache capability: whether it
// keeps one, which CacheKey values it already holds, and how many
// payload bytes they cover.
type CacheInfo struct {
	Enabled bool
	Keys    []string
	Bytes   int64
}

// CacheWorker is the optional Worker capability for content-addressed
// block caching: the scheduler reads the cache state once per run
// (CacheInfo) and pushes upcoming units' payloads ahead of their claim
// (PutBlocks — the prefetch path). Workers without it always receive
// inline block bytes, which is always correct, just never warm.
type CacheWorker interface {
	CacheInfo(ctx context.Context) (CacheInfo, error)
	PutBlocks(ctx context.Context, key string, blocks []byte) error
}

// DialTimeout bounds one remote partition evaluation end to end.
const DialTimeout = 10 * time.Minute

// xrpcWorker speaks the worker protocol over HTTP.
type xrpcWorker struct {
	name string
	c    *xrpc.Client
}

// Dial returns a Worker for a bskyworker daemon at addr
// ("host:port" or a full http:// base URL).
func Dial(addr string) Worker {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := xrpc.NewClient(base)
	c.HTTPClient.Timeout = DialTimeout
	return &xrpcWorker{name: addr, c: c}
}

func (w *xrpcWorker) Name() string { return w.name }

func (w *xrpcWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	return w.c.ProcedureRaw(ctx, NSIDEvalPartition, nil, ContentTypeCBOR, req)
}

// BlockFormats implements FormatsWorker by asking the daemon's
// describe query. A pre-v2 daemon answers without a formats field;
// that means it predates the columnar codec and reads only format 1.
func (w *xrpcWorker) BlockFormats(ctx context.Context) ([]int, error) {
	var dr DescribeResponse
	if err := w.c.Query(ctx, NSIDDescribe, nil, &dr); err != nil {
		return nil, err
	}
	if len(dr.Formats) == 0 {
		return []int{1}, nil
	}
	return dr.Formats, nil
}

// CacheInfo implements CacheWorker via the describe query; a daemon
// without a cache (or predating one) answers with Enabled false.
func (w *xrpcWorker) CacheInfo(ctx context.Context) (CacheInfo, error) {
	var dr DescribeResponse
	if err := w.c.Query(ctx, NSIDDescribe, nil, &dr); err != nil {
		return CacheInfo{}, err
	}
	return CacheInfo{Enabled: dr.CacheEnabled, Keys: dr.Cached, Bytes: dr.CacheBytes}, nil
}

// PutBlocks implements CacheWorker: push one payload into the daemon's
// cache ahead of the evaluation that will reference it.
func (w *xrpcWorker) PutBlocks(ctx context.Context, key string, blocks []byte) error {
	body, err := cbor.Marshal(&PutBlocksRequest{Version: ProtocolVersion, Key: key, Blocks: blocks})
	if err != nil {
		return err
	}
	_, err = w.c.ProcedureRaw(ctx, NSIDPutBlocks, nil, ContentTypeCBOR, body)
	return err
}

// Scheduler places a corpus' partitions onto workers. Construct with
// New; one Scheduler drives one evaluation run's placement (health
// marks are per-run state).
type Scheduler struct {
	// Corpus is the opened local store: the source of shipped blocks,
	// the authority on placement (manifest bases and record counts),
	// and the fallback execution site.
	Corpus *core.Corpus
	// Workers are the placement targets, tried round-robin by
	// partition index.
	Workers []Worker
	// ShipBlocks streams each partition's framed block bytes inside the
	// request instead of sending a store reference — required when
	// workers cannot reach the store path.
	ShipBlocks bool
	// EvalWorkers fixes the traversal worker count per remote
	// evaluation (0 = inherit the run's worker setting).
	EvalWorkers int
	// NoFallback disables the local out-of-core fallback; a partition
	// every worker failed then fails the run.
	NoFallback bool
	// Logf receives placement diagnostics — a worker being retired, a
	// partition degrading to local evaluation. nil logs via log.Printf:
	// a silently-degraded distributed run must not look like a healthy
	// one. Set to a no-op to silence.
	Logf func(format string, args ...any)

	// SpeculateAfter is how long a unit may stay in flight before an
	// idle worker re-executes it speculatively. 0 picks a threshold
	// automatically (3× the mean completed evaluation, floored so fast
	// fleets never speculate on healthy evals); negative disables
	// speculation, as does NoSpeculate.
	SpeculateAfter time.Duration
	// NoSpeculate disables speculative re-execution of stragglers.
	NoSpeculate bool
	// SplitFactor is the skew threshold for dynamic partition
	// splitting: a partition whose record total exceeds this multiple
	// of the median partition evaluates as contiguous sub-ranges. 0
	// means DefaultSplitFactor; negative disables splitting.
	SplitFactor float64
	// NoPrefetch disables pushing the next unit's block payload into a
	// worker's cache while its current evaluation runs.
	NoPrefetch bool
	// PrefetchBytes bounds one prefetched payload (0 = the ship bound).
	PrefetchBytes int

	// Stats counts this run's placement events; read after RunAll.
	Stats RunStats

	// shipLimit overrides MaxShipBytes (tests); 0 = MaxShipBytes.
	shipLimit int

	initOnce  sync.Once
	unhealthy []atomic.Bool
	// formats caches each worker's highest readable block format,
	// resolved lazily through FormatsWorker (0 = not yet queried). A
	// worker pinned at a lower format than the store gets its shipped
	// blocks transcoded down; in store-reference mode it is retired,
	// since the store bytes can't be rewritten per worker.
	formats []atomic.Int32
	// run is the elastic placement state, created by the first
	// partition registration; one Scheduler drives one run.
	runMu sync.Mutex
	run   *elasticRun
}

// RunStats counts one run's placement events. All fields are atomic:
// read them with Load (or format the lot with Summary) after the run.
type RunStats struct {
	// Evals counts remote evaluations accepted; LocalEvals counts
	// units evaluated by the local out-of-core fallback.
	Evals, LocalEvals atomic.Int64
	// Steals counts units claimed by a worker other than their home;
	// Speculations counts speculative duplicate launches, SpecWins how
	// many finished first, SpecDuplicates how many late duplicates
	// were cross-checked against an accepted result.
	Steals, Speculations, SpecWins, SpecDuplicates atomic.Int64
	// Splits counts partitions that evaluated as sub-ranges.
	Splits atomic.Int64
	// CacheHits counts evaluations served from a worker's block cache
	// (no payload shipped); CacheMisses counts key references the
	// worker could not serve (the payload re-shipped inline);
	// Prefetches counts payloads pushed ahead of their claim.
	CacheHits, CacheMisses, Prefetches atomic.Int64
	// ShippedBytes totals block payload bytes actually sent (inline
	// ships plus prefetch pushes; cache-hit evaluations add nothing).
	ShippedBytes atomic.Int64
}

// Summary renders the counters on one line.
func (st *RunStats) Summary() string {
	return fmt.Sprintf("evals=%d local=%d steals=%d speculations=%d spec-wins=%d spec-dups=%d splits=%d cache-hits=%d cache-misses=%d prefetches=%d shipped-bytes=%d",
		st.Evals.Load(), st.LocalEvals.Load(), st.Steals.Load(), st.Speculations.Load(),
		st.SpecWins.Load(), st.SpecDuplicates.Load(), st.Splits.Load(),
		st.CacheHits.Load(), st.CacheMisses.Load(), st.Prefetches.Load(), st.ShippedBytes.Load())
}

// init sizes the per-run placement state; lazy so a Scheduler built as
// a struct literal (every configuration field is exported) behaves
// exactly like one from New.
func (s *Scheduler) init() {
	s.initOnce.Do(func() {
		if s.unhealthy == nil {
			s.unhealthy = make([]atomic.Bool, len(s.Workers))
		}
		if s.formats == nil {
			s.formats = make([]atomic.Int32, len(s.Workers))
		}
	})
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// event is the one structured diagnostics emitter: every placement
// event logs as `sched: event=<kind> worker=<name> unit=<part.sub>`
// plus a reason, so log consumers match on fields instead of prose.
func (s *Scheduler) event(kind, worker string, id unitID, format string, args ...any) {
	unit := "-"
	if id.part >= 0 {
		unit = id.String()
	}
	s.logf("sched: event=%s worker=%s unit=%s: %s", kind, worker, unit, fmt.Sprintf(format, args...))
}

// New builds a scheduler over an opened store and its workers.
func New(c *core.Corpus, workers ...Worker) *Scheduler {
	return &Scheduler{Corpus: c, Workers: workers}
}

// Sources wraps every partition of the corpus as a RemoteSource, in
// manifest order — the placement input to analysis.MultiSource.
func (s *Scheduler) Sources() []analysis.Source {
	out := make([]analysis.Source, 0, len(s.Corpus.Manifest.Partitions))
	for k := range s.Corpus.Manifest.Partitions {
		out = append(out, &RemoteSource{sched: s, part: k})
	}
	return out
}

// RunAll evaluates the whole corpus through the scheduler and returns
// the reports in canonical order — the remote counterpart of
// analysis.RunAllDisk, byte-identical to it by the parity contract.
func (s *Scheduler) RunAll(workers int) ([]*analysis.Report, error) {
	ms := &analysis.MultiSource{Sources: s.Sources(), Manifest: s.Corpus.Manifest}
	reports, err := analysis.NewFullEngine().Workers(workers).RunSource(ms)
	if err != nil {
		return nil, err
	}
	// Every partition has resolved, but a speculative duplicate may
	// still be in flight: its cross-check must happen before results
	// leave the scheduler, so a divergence can still fail the run.
	s.runMu.Lock()
	r := s.run
	s.runMu.Unlock()
	if r != nil {
		if err := r.drain(); err != nil {
			return nil, err
		}
	}
	return analysis.Canonicalize(reports), nil
}

// markUnhealthy retires worker wi for the rest of the run, reporting
// whether this call was the one that flipped it (concurrent partitions
// can discover the same dead worker; only the first logs).
func (s *Scheduler) markUnhealthy(wi int) bool {
	return wi < len(s.unhealthy) && s.unhealthy[wi].CompareAndSwap(false, true)
}

func (s *Scheduler) isHealthy(wi int) bool {
	return wi < len(s.unhealthy) && !s.unhealthy[wi].Load()
}

// maxShip is the effective ship-size bound.
func (s *Scheduler) maxShip() int {
	if s.shipLimit > 0 {
		return s.shipLimit
	}
	return MaxShipBytes
}

// storeFormat is the corpus' block format (manifest-declared; stores
// written before versioned manifests count as format 1).
func (s *Scheduler) storeFormat() int {
	if s.Corpus.Version < 1 {
		return 1
	}
	return s.Corpus.Version
}

// workerFormat resolves — and caches for the run — worker wi's highest
// readable block format, clamped to what this build can produce. A
// failed query pins the worker at format 1: wasteful (its shipped
// blocks get transcoded down) but never wrong.
func (s *Scheduler) workerFormat(ctx context.Context, wi int) int {
	if v := s.formats[wi].Load(); v > 0 {
		return int(v)
	}
	maxF := 1
	if fw, ok := s.Workers[wi].(FormatsWorker); ok {
		if fs, err := fw.BlockFormats(ctx); err == nil {
			for _, f := range fs {
				if f > maxF && f <= core.DiskFormatVersion {
					maxF = f
				}
			}
		}
	}
	s.formats[wi].Store(int32(maxF))
	return maxF
}

// evalPartition places one partition through the run's elastic
// machinery (elastic.go): its units join the shared pull queue and
// the call blocks until every one resolves. The first registration
// creates the run; the accumulator set and worker count are run-wide
// (every partition of one MultiSource evaluation shares them).
func (s *Scheduler) evalPartition(part int, accs []analysis.Accumulator, workers int) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	s.init()
	s.runMu.Lock()
	if s.run == nil {
		s.run = newElasticRun(s, accs, workers)
	}
	r := s.run
	s.runMu.Unlock()
	return r.evalPartition(part)
}

// RemoteSource is one partition placed through the scheduler. It
// implements analysis.Source, so remote partitions mix with disk,
// batch, and stream partitions under one MultiSource — the locality of
// a partition is invisible above the Source interface.
type RemoteSource struct {
	sched *Scheduler
	part  int
}

// NewRemoteSource wraps one partition of the scheduler's corpus.
func NewRemoteSource(s *Scheduler, part int) *RemoteSource {
	return &RemoteSource{sched: s, part: part}
}

// Run implements analysis.Source.
func (r *RemoteSource) Run(accs []analysis.Accumulator, workers int, _ analysis.RenderFunc) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	return r.sched.evalPartition(r.part, accs, workers)
}

// Offloaded implements analysis.OffloadedSource: the traversal runs on
// a worker, so MultiSource must not spend a local CPU slot waiting on
// it. (The local fallback after total worker loss does burn local CPU
// without a slot — acceptable in an already-degraded run.)
func (r *RemoteSource) Offloaded() bool { return true }
