// Package sched places the partitions of a disk-backed corpus onto
// evaluation workers and folds their shard state into one report set —
// the remote-evaluation layer of DESIGN.md §9.
//
// The manifest is the placement unit and the partition store the
// shipping form: each partition is handed to a worker (in-process
// Loopback, or a cmd/bskyworker daemon over the XRPC transport) either
// as a store reference the worker opens locally or as its framed
// block-file bytes shipped inline. The worker runs the engine's
// level-one sharded traversal and returns serialized shard state
// (analysis.MarshalPartitionState); the scheduler decodes it into a
// Source, so partitions evaluated remotely compose under
// analysis.MultiSource exactly like disk, batch, and stream partitions
// — and the folded output is byte-identical to the local out-of-core
// run at any worker count.
//
// Failure handling: a worker that errors (dead endpoint, rejected
// request, undecodable or mismatched state) is marked unhealthy and
// skipped for the rest of the run; its partition retries on the
// remaining workers and, when every worker has failed it, falls back
// to the local out-of-core traversal (analysis.DiskSource semantics) —
// so killing a worker mid-run degrades throughput, never correctness.
package sched

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/xrpc"
)

// Worker evaluates one partition per call: it receives an encoded
// EvalRequest and returns the partition's serialized shard state.
type Worker interface {
	// Name labels the worker in errors and logs.
	Name() string
	// Eval runs one partition evaluation.
	Eval(ctx context.Context, req []byte) ([]byte, error)
}

// DialTimeout bounds one remote partition evaluation end to end.
const DialTimeout = 10 * time.Minute

// xrpcWorker speaks the worker protocol over HTTP.
type xrpcWorker struct {
	name string
	c    *xrpc.Client
}

// Dial returns a Worker for a bskyworker daemon at addr
// ("host:port" or a full http:// base URL).
func Dial(addr string) Worker {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := xrpc.NewClient(base)
	c.HTTPClient.Timeout = DialTimeout
	return &xrpcWorker{name: addr, c: c}
}

func (w *xrpcWorker) Name() string { return w.name }

func (w *xrpcWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	return w.c.ProcedureRaw(ctx, NSIDEvalPartition, nil, ContentTypeCBOR, req)
}

// Scheduler places a corpus' partitions onto workers. Construct with
// New; one Scheduler drives one evaluation run's placement (health
// marks are per-run state).
type Scheduler struct {
	// Corpus is the opened local store: the source of shipped blocks,
	// the authority on placement (manifest bases and record counts),
	// and the fallback execution site.
	Corpus *core.Corpus
	// Workers are the placement targets, tried round-robin by
	// partition index.
	Workers []Worker
	// ShipBlocks streams each partition's framed block bytes inside the
	// request instead of sending a store reference — required when
	// workers cannot reach the store path.
	ShipBlocks bool
	// EvalWorkers fixes the traversal worker count per remote
	// evaluation (0 = inherit the run's worker setting).
	EvalWorkers int
	// NoFallback disables the local out-of-core fallback; a partition
	// every worker failed then fails the run.
	NoFallback bool
	// Logf receives placement diagnostics — a worker being retired, a
	// partition degrading to local evaluation. nil logs via log.Printf:
	// a silently-degraded distributed run must not look like a healthy
	// one. Set to a no-op to silence.
	Logf func(format string, args ...any)

	// shipLimit overrides MaxShipBytes (tests); 0 = MaxShipBytes.
	shipLimit int

	initOnce  sync.Once
	unhealthy []atomic.Bool
	// slots bounds in-flight partition evaluations to the worker count:
	// remote partitions skip MultiSource's local CPU cap (Offloaded),
	// so without this a ship-blocks run would hold every partition's
	// block bytes in memory at once and flood each worker with
	// unbounded concurrent evaluations. Local fallbacks hold a slot
	// too, keeping total concurrency bounded even with the fleet gone.
	slots chan struct{}
}

// init sizes the per-run placement state; lazy so a Scheduler built as
// a struct literal (every configuration field is exported) behaves
// exactly like one from New.
func (s *Scheduler) init() {
	s.initOnce.Do(func() {
		if s.unhealthy == nil {
			s.unhealthy = make([]atomic.Bool, len(s.Workers))
		}
		if s.slots == nil {
			s.slots = make(chan struct{}, max(1, len(s.Workers)))
		}
	})
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// New builds a scheduler over an opened store and its workers.
func New(c *core.Corpus, workers ...Worker) *Scheduler {
	return &Scheduler{Corpus: c, Workers: workers}
}

// Sources wraps every partition of the corpus as a RemoteSource, in
// manifest order — the placement input to analysis.MultiSource.
func (s *Scheduler) Sources() []analysis.Source {
	out := make([]analysis.Source, 0, len(s.Corpus.Manifest.Partitions))
	for k := range s.Corpus.Manifest.Partitions {
		out = append(out, &RemoteSource{sched: s, part: k})
	}
	return out
}

// RunAll evaluates the whole corpus through the scheduler and returns
// the reports in canonical order — the remote counterpart of
// analysis.RunAllDisk, byte-identical to it by the parity contract.
func (s *Scheduler) RunAll(workers int) ([]*analysis.Report, error) {
	ms := &analysis.MultiSource{Sources: s.Sources(), Manifest: s.Corpus.Manifest}
	reports, err := analysis.NewFullEngine().Workers(workers).RunSource(ms)
	if err != nil {
		return nil, err
	}
	return analysis.Canonicalize(reports), nil
}

// markUnhealthy retires worker wi for the rest of the run, reporting
// whether this call was the one that flipped it (concurrent partitions
// can discover the same dead worker; only the first logs).
func (s *Scheduler) markUnhealthy(wi int) bool {
	return wi < len(s.unhealthy) && s.unhealthy[wi].CompareAndSwap(false, true)
}

func (s *Scheduler) isHealthy(wi int) bool {
	return wi < len(s.unhealthy) && !s.unhealthy[wi].Load()
}

// anyHealthy reports whether at least one worker is still placeable.
func (s *Scheduler) anyHealthy() bool {
	for wi := range s.Workers {
		if s.isHealthy(wi) {
			return true
		}
	}
	return false
}

// maxShip is the effective ship-size bound.
func (s *Scheduler) maxShip() int {
	if s.shipLimit > 0 {
		return s.shipLimit
	}
	return MaxShipBytes
}

// request builds the encoded EvalRequest for partition part.
func (s *Scheduler) request(part int, accs []analysis.Accumulator, workers int) ([]byte, error) {
	info := &s.Corpus.Manifest.Partitions[part]
	evalWorkers := s.EvalWorkers
	if evalWorkers <= 0 {
		evalWorkers = workers
	}
	req := &EvalRequest{
		Version: ProtocolVersion,
		Accs:    analysis.Fingerprint(accs),
		Base:    info.Base,
		Records: &info.Records,
		Workers: evalWorkers,
	}
	if s.ShipBlocks {
		blocks, err := ReadPartitionBlocks(s.Corpus, part)
		if err != nil {
			return nil, fmt.Errorf("sched: read partition %d blocks: %w", part, err)
		}
		req.Blocks = blocks
	} else {
		req.Store = s.Corpus.Dir
		req.Partition = part
	}
	return cbor.Marshal(req)
}

// evalPartition places one partition: round-robin from its home
// worker, skipping workers already marked unhealthy, marking every
// worker that fails it, and falling back to the local out-of-core
// traversal once no worker remains. State returned by a worker is
// decoded and cross-checked against the manifest's record counts — a
// worker returning plausible-but-wrong state is treated exactly like a
// dead one.
func (s *Scheduler) evalPartition(part int, accs []analysis.Accumulator, workers int) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	s.init()
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	var attempts []string
	// Don't pay for the request — in ShipBlocks mode the whole block
	// file read and encoded — when no worker is left to send it to.
	if n := len(s.Workers); n > 0 && s.anyHealthy() {
		req, err := s.request(part, accs, workers)
		if err != nil {
			return nil, nil, nil, err
		}
		if limit := s.maxShip(); s.ShipBlocks && len(req) > limit {
			// A partition too big to ship is this partition's problem,
			// not the fleet's: every worker would reject the body, and
			// retiring them all would degrade the rest of the run too.
			if s.NoFallback {
				return nil, nil, nil, fmt.Errorf("sched: partition %d request of %d bytes exceeds the %d-byte ship bound", part, len(req), limit)
			}
			s.logf("sched: partition %d request (%d bytes) exceeds the %d-byte ship bound; evaluating locally", part, len(req), limit)
			return analysis.NewDiskSource(s.Corpus, part).Run(accs, workers, nil)
		}
		info := &s.Corpus.Manifest.Partitions[part]
		retire := func(wi int, msg string) {
			if s.markUnhealthy(wi) {
				s.logf("sched: retiring worker %s after partition %d: %s", s.Workers[wi].Name(), part, msg)
			}
			attempts = append(attempts, fmt.Sprintf("%s: %s", s.Workers[wi].Name(), msg))
		}
		for attempt := 0; attempt < n; attempt++ {
			wi := (part + attempt) % n
			if !s.isHealthy(wi) {
				continue
			}
			w := s.Workers[wi]
			state, err := w.Eval(context.Background(), req)
			if err != nil {
				retire(wi, err.Error())
				continue
			}
			world, shards, tables, err := analysis.UnmarshalPartitionState(accs, state)
			if err != nil {
				retire(wi, err.Error())
				continue
			}
			if got := world.Counts(); got != info.Records {
				retire(wi, fmt.Sprintf("returned %+v records but the manifest promises %+v", got, info.Records))
				continue
			}
			return world, shards, tables, nil
		}
	}
	if s.NoFallback {
		return nil, nil, nil, fmt.Errorf("sched: partition %d failed on every worker: %s", part, strings.Join(attempts, "; "))
	}
	// Every worker is gone (or none were configured): evaluate the
	// partition locally, out of core, exactly as RunAllDisk would.
	s.logf("sched: partition %d degrading to local out-of-core evaluation (no healthy workers)", part)
	return analysis.NewDiskSource(s.Corpus, part).Run(accs, workers, nil)
}

// RemoteSource is one partition placed through the scheduler. It
// implements analysis.Source, so remote partitions mix with disk,
// batch, and stream partitions under one MultiSource — the locality of
// a partition is invisible above the Source interface.
type RemoteSource struct {
	sched *Scheduler
	part  int
}

// NewRemoteSource wraps one partition of the scheduler's corpus.
func NewRemoteSource(s *Scheduler, part int) *RemoteSource {
	return &RemoteSource{sched: s, part: part}
}

// Run implements analysis.Source.
func (r *RemoteSource) Run(accs []analysis.Accumulator, workers int, _ analysis.RenderFunc) (*analysis.World, []analysis.Shard, *analysis.LabelTables, error) {
	return r.sched.evalPartition(r.part, accs, workers)
}

// Offloaded implements analysis.OffloadedSource: the traversal runs on
// a worker, so MultiSource must not spend a local CPU slot waiting on
// it. (The local fallback after total worker loss does burn local CPU
// without a slot — acceptable in an already-degraded run.)
func (r *RemoteSource) Offloaded() bool { return true }
