package sched

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

var testDS = sync.OnceValue(func() *core.Dataset {
	return synth.Generate(synth.Config{Scale: 2000, Seed: 42})
})

var goldenOnce = sync.OnceValue(func() []*analysis.Report {
	return analysis.RunAll(testDS(), 1)
})

// spillN splits the test corpus into n partitions and writes it as a
// store under a fresh temp dir.
func spillN(t *testing.T, n int) *core.Corpus {
	t.Helper()
	parts, m := core.Split(testDS(), n)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compareToGolden(t *testing.T, label string, got []*analysis.Report) {
	t.Helper()
	want := goldenOnce()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: report %d is %s, want %s", label, i, got[i].ID, want[i].ID)
		}
		if got[i].String() != want[i].String() {
			t.Errorf("%s: report %s differs:\n--- got ---\n%s\n--- want ---\n%s",
				label, got[i].ID, got[i].String(), want[i].String())
		}
	}
}

// TestRemoteParityGolden is the tentpole's acceptance gate: loopback
// remote evaluation — in-process workers serving all partitions
// through the full request/state wire codecs — must be byte-identical
// to the local disk-backed golden for n ∈ {1,2,4,8}, in both shipping
// modes (store reference and streamed block frames).
func TestRemoteParityGolden(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		c := spillN(t, n)
		for _, ship := range []bool{false, true} {
			s := New(c,
				&Loopback{Server: &Server{}, Label: "w0"},
				&Loopback{Server: &Server{}, Label: "w1"},
			)
			s.ShipBlocks = ship
			got, err := s.RunAll(2)
			if err != nil {
				t.Fatalf("n=%d ship=%v: %v", n, ship, err)
			}
			label := "remote-store"
			if ship {
				label = "remote-ship"
			}
			compareToGolden(t, fmt.Sprintf("%s n=%d", label, n), got)
		}
	}
}

// TestRemoteParityHTTP runs the full network path: two bskyworker
// servers on real sockets, partitions shipped as block frames over
// XRPC, state folded locally — byte-identical to the golden.
func TestRemoteParityHTTP(t *testing.T) {
	c := spillN(t, 4)
	w0 := &Server{}
	w1 := &Server{}
	ts0 := httptest.NewServer(w0.Mux())
	defer ts0.Close()
	ts1 := httptest.NewServer(w1.Mux())
	defer ts1.Close()
	s := New(c, Dial(ts0.URL), Dial(ts1.URL))
	s.ShipBlocks = true
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "remote-http", got)
	if w0.Evals()+w1.Evals() != 4 {
		t.Fatalf("workers served %d+%d evaluations, want 4", w0.Evals(), w1.Evals())
	}
}

// dyingWorker serves a limited number of evaluations, then fails every
// call — a worker killed mid-run.
type dyingWorker struct {
	inner Worker
	left  atomic.Int64
}

func (w *dyingWorker) Name() string { return w.inner.Name() + "-dying" }

func (w *dyingWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	if w.left.Add(-1) < 0 {
		return nil, errors.New("worker killed")
	}
	return w.inner.Eval(ctx, req)
}

// TestRemoteWorkerDiesMidRun is the failure half of the acceptance
// gate: a worker that dies after its first evaluation must be retired,
// its partitions retried on the surviving worker, and the output must
// stay byte-identical to the golden.
func TestRemoteWorkerDiesMidRun(t *testing.T) {
	c := spillN(t, 8)
	dying := &dyingWorker{inner: &Loopback{Server: &Server{}, Label: "w0"}}
	dying.left.Store(1)
	s := New(c, dying, &Loopback{Server: &Server{}, Label: "w1"})
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "worker-death", got)
}

// TestRemoteAllWorkersDeadFallsBackLocal pins the last line of
// defense: with every worker dead the scheduler evaluates partitions
// locally out of core, still byte-identical; with NoFallback it
// surfaces the per-worker failure summary instead.
func TestRemoteAllWorkersDeadFallsBackLocal(t *testing.T) {
	c := spillN(t, 4)
	dead := func(name string) Worker {
		w := &dyingWorker{inner: &Loopback{Server: &Server{}, Label: name}}
		return w // left starts at 0: dead from the first call
	}
	s := New(c, dead("w0"), dead("w1"))
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "all-dead-fallback", got)

	s2 := New(c, dead("w0"))
	s2.Logf = t.Logf
	s2.NoFallback = true
	if _, err := s2.RunAll(2); err == nil || !strings.Contains(err.Error(), "failed on every worker") {
		t.Fatalf("NoFallback run returned %v, want per-worker failure summary", err)
	}
}

// TestRemoteCorruptPartitionFailsRun mirrors the disk error-path test
// across the wire: a corrupt block file must fail the remote run with
// a diagnostic (the worker refuses it, the fallback refuses it too).
func TestRemoteCorruptPartitionFailsRun(t *testing.T) {
	c := spillN(t, 2)
	path := filepath.Join(c.Dir, core.PartitionFileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x5A
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(c, &Loopback{Server: &Server{}})
	s.Logf = t.Logf
	if _, err := s.RunAll(1); err == nil {
		t.Fatal("corrupt partition evaluated without error through the remote path")
	}
}

// TestWorkerStoreRoot pins the daemon's path restriction: a store
// outside -store-root is refused, one under it is served.
func TestWorkerStoreRoot(t *testing.T) {
	c := spillN(t, 1)
	srv := &Server{StoreRoot: c.Dir}
	s := New(c, &Loopback{Server: srv})
	s.NoFallback = true
	if _, err := s.RunAll(1); err != nil {
		t.Fatalf("store under root refused: %v", err)
	}
	outside := &Server{StoreRoot: t.TempDir()}
	s2 := New(c, &Loopback{Server: outside})
	s2.Logf = t.Logf
	s2.NoFallback = true
	if _, err := s2.RunAll(1); err == nil {
		t.Fatal("store outside the worker's root served without error")
	}
}

// TestRemoteOversizedShipFallsBackPerPartition pins the ship-bound
// semantics: a partition too big to ship degrades to local evaluation
// by itself — the fleet stays healthy and keeps serving the rest.
func TestRemoteOversizedShipFallsBackPerPartition(t *testing.T) {
	c := spillN(t, 4)
	w0 := &Server{}
	w1 := &Server{}
	s := New(c, &Loopback{Server: w0, Label: "w0"}, &Loopback{Server: w1, Label: "w1"})
	s.ShipBlocks = true
	s.Logf = t.Logf
	// Below every partition's framed size: every request exceeds the
	// bound, so every partition must fall back locally with the fleet
	// untouched — and the output must still match the golden.
	s.shipLimit = 64
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "oversized-ship", got)
	if !s.isHealthy(0) || !s.isHealthy(1) {
		t.Fatal("oversized partitions retired healthy workers")
	}
	if w0.Evals()+w1.Evals() != 0 {
		t.Fatal("oversized requests reached the workers")
	}

	s2 := New(c, &Loopback{Server: &Server{}})
	s2.ShipBlocks = true
	s2.NoFallback = true
	s2.shipLimit = 64
	if _, err := s2.RunAll(1); err == nil || !strings.Contains(err.Error(), "ship bound") {
		t.Fatalf("NoFallback oversized run returned %v, want ship-bound error", err)
	}
}

// TestSchedulerStructLiteral pins zero-value usability: a Scheduler
// built as a struct literal (every configuration field is exported)
// must still place work on its workers, exactly like one from New.
func TestSchedulerStructLiteral(t *testing.T) {
	c := spillN(t, 2)
	w := &Server{}
	s := &Scheduler{Corpus: c, Workers: []Worker{&Loopback{Server: w}}}
	got, err := s.RunAll(1)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "struct-literal", got)
	if w.Evals() != 2 {
		t.Fatalf("literal-built scheduler served %d evaluations on its worker, want 2", w.Evals())
	}
}

// TestWorkerRejectsHostileRequests pins the worker's request
// validation: garbage bytes, future protocol versions, fingerprint
// mismatches, and double-sourced requests all error, never panic.
func TestWorkerRejectsHostileRequests(t *testing.T) {
	srv := &Server{}
	if _, err := srv.EvalPartition([]byte("not cbor at all")); err == nil {
		t.Error("garbage request accepted")
	}
	encode := func(mutate func(*EvalRequest)) []byte {
		req := &EvalRequest{Version: ProtocolVersion, Store: t.TempDir(), Accs: analysis.NewFullEngine().Fingerprint()}
		mutate(req)
		data, err := cbor.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"future version": encode(func(r *EvalRequest) { r.Version = ProtocolVersion + 1 }),
		"fingerprint":    encode(func(r *EvalRequest) { r.Accs = []string{"T1"} }),
		"both sources":   encode(func(r *EvalRequest) { r.Blocks = []byte{1} }),
		"no source":      encode(func(r *EvalRequest) { r.Store = "" }),
	}
	for name, data := range cases {
		if _, err := srv.EvalPartition(data); err == nil {
			t.Errorf("%s: hostile request accepted", name)
		}
	}
}
