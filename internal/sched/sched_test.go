package sched

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"blueskies/internal/analysis"
	"blueskies/internal/cbor"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

var testDS = sync.OnceValue(func() *core.Dataset {
	return synth.Generate(synth.Config{Scale: 2000, Seed: 42})
})

var goldenOnce = sync.OnceValue(func() []*analysis.Report {
	return analysis.RunAll(testDS(), 1)
})

// spillN splits the test corpus into n partitions and writes it as a
// store under a fresh temp dir.
func spillN(t *testing.T, n int) *core.Corpus {
	t.Helper()
	parts, m := core.Split(testDS(), n)
	dir := t.TempDir()
	if err := core.WriteCorpus(dir, parts, m); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func compareToGolden(t *testing.T, label string, got []*analysis.Report) {
	t.Helper()
	want := goldenOnce()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: report %d is %s, want %s", label, i, got[i].ID, want[i].ID)
		}
		if got[i].String() != want[i].String() {
			t.Errorf("%s: report %s differs:\n--- got ---\n%s\n--- want ---\n%s",
				label, got[i].ID, got[i].String(), want[i].String())
		}
	}
}

// TestRemoteParityGolden is the tentpole's acceptance gate: loopback
// remote evaluation — in-process workers serving all partitions
// through the full request/state wire codecs — must be byte-identical
// to the local disk-backed golden for n ∈ {1,2,4,8}, in both shipping
// modes (store reference and streamed block frames).
func TestRemoteParityGolden(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		c := spillN(t, n)
		for _, ship := range []bool{false, true} {
			s := New(c,
				&Loopback{Server: &Server{}, Label: "w0"},
				&Loopback{Server: &Server{}, Label: "w1"},
			)
			s.ShipBlocks = ship
			got, err := s.RunAll(2)
			if err != nil {
				t.Fatalf("n=%d ship=%v: %v", n, ship, err)
			}
			label := "remote-store"
			if ship {
				label = "remote-ship"
			}
			compareToGolden(t, fmt.Sprintf("%s n=%d", label, n), got)
		}
	}
}

// TestRemoteParityHTTP runs the full network path: two bskyworker
// servers on real sockets, partitions shipped as block frames over
// XRPC, state folded locally — byte-identical to the golden.
func TestRemoteParityHTTP(t *testing.T) {
	c := spillN(t, 4)
	w0 := &Server{}
	w1 := &Server{}
	ts0 := httptest.NewServer(w0.Mux())
	defer ts0.Close()
	ts1 := httptest.NewServer(w1.Mux())
	defer ts1.Close()
	s := New(c, Dial(ts0.URL), Dial(ts1.URL))
	s.ShipBlocks = true
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "remote-http", got)
	// At least one evaluation per partition; speculation may add
	// byte-identical duplicates under scheduler jitter.
	if w0.Evals()+w1.Evals() < 4 {
		t.Fatalf("workers served %d+%d evaluations, want ≥ 4", w0.Evals(), w1.Evals())
	}
}

// dyingWorker serves a limited number of evaluations, then fails every
// call — a worker killed mid-run.
type dyingWorker struct {
	inner Worker
	left  atomic.Int64
}

func (w *dyingWorker) Name() string { return w.inner.Name() + "-dying" }

func (w *dyingWorker) Eval(ctx context.Context, req []byte) ([]byte, error) {
	if w.left.Add(-1) < 0 {
		return nil, errors.New("worker killed")
	}
	return w.inner.Eval(ctx, req)
}

// TestRemoteWorkerDiesMidRun is the failure half of the acceptance
// gate: a worker that dies after its first evaluation must be retired,
// its partitions retried on the surviving worker, and the output must
// stay byte-identical to the golden.
func TestRemoteWorkerDiesMidRun(t *testing.T) {
	c := spillN(t, 8)
	dying := &dyingWorker{inner: &Loopback{Server: &Server{}, Label: "w0"}}
	dying.left.Store(1)
	s := New(c, dying, &Loopback{Server: &Server{}, Label: "w1"})
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "worker-death", got)
}

// TestRemoteAllWorkersDeadFallsBackLocal pins the last line of
// defense: with every worker dead the scheduler evaluates partitions
// locally out of core, still byte-identical; with NoFallback it
// surfaces the per-worker failure summary instead.
func TestRemoteAllWorkersDeadFallsBackLocal(t *testing.T) {
	c := spillN(t, 4)
	dead := func(name string) Worker {
		w := &dyingWorker{inner: &Loopback{Server: &Server{}, Label: name}}
		return w // left starts at 0: dead from the first call
	}
	s := New(c, dead("w0"), dead("w1"))
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "all-dead-fallback", got)

	s2 := New(c, dead("w0"))
	s2.Logf = t.Logf
	s2.NoFallback = true
	if _, err := s2.RunAll(2); err == nil || !strings.Contains(err.Error(), "failed on every worker") {
		t.Fatalf("NoFallback run returned %v, want per-worker failure summary", err)
	}
}

// TestRemoteCorruptPartitionFailsRun mirrors the disk error-path test
// across the wire: a corrupt block file must fail the remote run with
// a diagnostic (the worker refuses it, the fallback refuses it too).
func TestRemoteCorruptPartitionFailsRun(t *testing.T) {
	c := spillN(t, 2)
	path := filepath.Join(c.Dir, core.PartitionFileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x5A
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(c, &Loopback{Server: &Server{}})
	s.Logf = t.Logf
	if _, err := s.RunAll(1); err == nil {
		t.Fatal("corrupt partition evaluated without error through the remote path")
	}
}

// TestWorkerStoreRoot pins the daemon's path restriction: a store
// outside -store-root is refused, one under it is served.
func TestWorkerStoreRoot(t *testing.T) {
	c := spillN(t, 1)
	srv := &Server{StoreRoot: c.Dir}
	s := New(c, &Loopback{Server: srv})
	s.NoFallback = true
	if _, err := s.RunAll(1); err != nil {
		t.Fatalf("store under root refused: %v", err)
	}
	outside := &Server{StoreRoot: t.TempDir()}
	s2 := New(c, &Loopback{Server: outside})
	s2.Logf = t.Logf
	s2.NoFallback = true
	if _, err := s2.RunAll(1); err == nil {
		t.Fatal("store outside the worker's root served without error")
	}
}

// TestRemoteOversizedShipFallsBackPerPartition pins the ship-bound
// semantics: a partition too big to ship degrades to local evaluation
// by itself — the fleet stays healthy and keeps serving the rest.
func TestRemoteOversizedShipFallsBackPerPartition(t *testing.T) {
	c := spillN(t, 4)
	w0 := &Server{}
	w1 := &Server{}
	s := New(c, &Loopback{Server: w0, Label: "w0"}, &Loopback{Server: w1, Label: "w1"})
	s.ShipBlocks = true
	s.Logf = t.Logf
	// Below every partition's framed size: every request exceeds the
	// bound, so every partition must fall back locally with the fleet
	// untouched — and the output must still match the golden.
	s.shipLimit = 64
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "oversized-ship", got)
	if !s.isHealthy(0) || !s.isHealthy(1) {
		t.Fatal("oversized partitions retired healthy workers")
	}
	if w0.Evals()+w1.Evals() != 0 {
		t.Fatal("oversized requests reached the workers")
	}

	s2 := New(c, &Loopback{Server: &Server{}})
	s2.ShipBlocks = true
	s2.NoFallback = true
	s2.shipLimit = 64
	if _, err := s2.RunAll(1); err == nil || !strings.Contains(err.Error(), "ship bound") {
		t.Fatalf("NoFallback oversized run returned %v, want ship-bound error", err)
	}
}

// TestSchedulerStructLiteral pins zero-value usability: a Scheduler
// built as a struct literal (every configuration field is exported)
// must still place work on its workers, exactly like one from New.
func TestSchedulerStructLiteral(t *testing.T) {
	c := spillN(t, 2)
	w := &Server{}
	s := &Scheduler{Corpus: c, Workers: []Worker{&Loopback{Server: w}}}
	got, err := s.RunAll(1)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "struct-literal", got)
	if w.Evals() != 2 {
		t.Fatalf("literal-built scheduler served %d evaluations on its worker, want 2", w.Evals())
	}
}

// TestWorkerRejectsHostileRequests pins the worker's request
// validation: garbage bytes, future protocol versions, fingerprint
// mismatches, and double-sourced requests all error, never panic.
func TestWorkerRejectsHostileRequests(t *testing.T) {
	srv := &Server{}
	if _, err := srv.EvalPartition([]byte("not cbor at all")); err == nil {
		t.Error("garbage request accepted")
	}
	encode := func(mutate func(*EvalRequest)) []byte {
		req := &EvalRequest{Version: ProtocolVersion, Store: t.TempDir(), Accs: analysis.NewFullEngine().Fingerprint()}
		mutate(req)
		data, err := cbor.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"future version": encode(func(r *EvalRequest) { r.Version = ProtocolVersion + 1 }),
		"fingerprint":    encode(func(r *EvalRequest) { r.Accs = []string{"T1"} }),
		"both sources":   encode(func(r *EvalRequest) { r.Blocks = []byte{1} }),
		"no source":      encode(func(r *EvalRequest) { r.Store = "" }),
	}
	for name, data := range cases {
		if _, err := srv.EvalPartition(data); err == nil {
			t.Errorf("%s: hostile request accepted", name)
		}
	}
}

// spillNVersion is spillN at an explicit block format version.
func spillNVersion(t *testing.T, n, version int) *core.Corpus {
	t.Helper()
	parts, m := core.Split(testDS(), n)
	dir := t.TempDir()
	if err := core.WriteCorpusVersion(dir, parts, m, version); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// v1OnlyWorker simulates a pre-columnar worker build: it advertises
// block format 1 only, rejects any shipped blocks or store written at
// a newer format (the way the old build's version gate would), and
// strips MaxFormat before delegating — so the wrapped current server
// answers with format-1 state, exactly like a real v1 daemon.
type v1OnlyWorker struct {
	inner *Loopback

	mu  sync.Mutex
	saw []int // header version of every shipped payload accepted
}

func (w *v1OnlyWorker) Name() string { return w.inner.Name() + "-v1only" }

func (w *v1OnlyWorker) BlockFormats(context.Context) ([]int, error) { return []int{1}, nil }

func (w *v1OnlyWorker) Eval(ctx context.Context, body []byte) ([]byte, error) {
	var req EvalRequest
	if err := cbor.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if len(req.Blocks) > 0 {
		if len(req.Blocks) < 12 {
			return nil, errors.New("short block payload")
		}
		v := int(binary.BigEndian.Uint32(req.Blocks[8:12]))
		if v > 1 {
			return nil, fmt.Errorf("partition store version %d not supported", v)
		}
		w.mu.Lock()
		w.saw = append(w.saw, v)
		w.mu.Unlock()
	}
	if req.Store != "" {
		if _, v, err := core.ReadManifestVersion(req.Store); err != nil {
			return nil, err
		} else if v > 1 {
			return nil, fmt.Errorf("store version %d not supported", v)
		}
	}
	req.MaxFormat = 0
	stripped, err := cbor.Marshal(&req)
	if err != nil {
		return nil, err
	}
	return w.inner.Eval(ctx, stripped)
}

// TestShipBlocksDowngradeParity pins the negotiation contract in
// shipping mode: against a v2 store, a worker that only reads format
// 1 gets each partition's blocks transcoded down before shipping — it
// serves every partition itself, stays healthy, and the folded output
// stays byte-identical to the golden.
func TestShipBlocksDowngradeParity(t *testing.T) {
	c := spillN(t, 4)
	if c.Version != core.DiskFormatVersion {
		t.Fatalf("test store is format v%d, want v%d", c.Version, core.DiskFormatVersion)
	}
	srv := &Server{}
	old := &v1OnlyWorker{inner: &Loopback{Server: srv, Label: "w0"}}
	s := New(c, old)
	s.ShipBlocks = true
	s.Logf = t.Logf
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "ship-downgrade", got)
	if srv.Evals() != 4 {
		t.Fatalf("v1-only worker served %d evaluations, want 4 (fallback stole its work)", srv.Evals())
	}
	if !s.isHealthy(0) {
		t.Fatal("downgraded worker was retired")
	}
	old.mu.Lock()
	defer old.mu.Unlock()
	if len(old.saw) != 4 {
		t.Fatalf("worker accepted %d shipped payloads, want 4", len(old.saw))
	}
	for _, v := range old.saw {
		if v != 1 {
			t.Fatalf("worker received format-v%d blocks, want transcoded v1", v)
		}
	}
}

// TestStoreModeRetiresIncompatibleWorker pins the other negotiation
// arm: in store-reference mode a v2 store cannot be rewritten per
// worker, so a format-1-only worker is retired — loudly — before any
// request reaches it, and the rest of the fleet absorbs its share.
func TestStoreModeRetiresIncompatibleWorker(t *testing.T) {
	c := spillN(t, 4)
	oldSrv, curSrv := &Server{}, &Server{}
	old := &v1OnlyWorker{inner: &Loopback{Server: oldSrv, Label: "w0"}}
	var mu sync.Mutex
	var logs []string
	s := New(c, old, &Loopback{Server: curSrv, Label: "w1"})
	s.Logf = func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	got, err := s.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "store-retire", got)
	if oldSrv.Evals() != 0 {
		t.Fatalf("incompatible worker served %d evaluations, want 0", oldSrv.Evals())
	}
	if curSrv.Evals() != 4 {
		t.Fatalf("surviving worker served %d evaluations, want 4", curSrv.Evals())
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "block format") {
		t.Fatalf("retirement log does not name the format mismatch:\n%s", joined)
	}

	// With the incompatible worker alone, the run must still complete
	// through the local fallback, byte-identical.
	s2 := New(c, &v1OnlyWorker{inner: &Loopback{Server: &Server{}, Label: "w0"}})
	s2.Logf = t.Logf
	got2, err := s2.RunAll(2)
	if err != nil {
		t.Fatal(err)
	}
	compareToGolden(t, "store-retire-fallback", got2)
}

// TestRemoteParityV1Store pins the old-store path: a format-1 store
// evaluated through current workers, in both shipping modes, ships
// its v1 bytes untouched and stays byte-identical to the golden.
func TestRemoteParityV1Store(t *testing.T) {
	c := spillNVersion(t, 4, 1)
	for _, ship := range []bool{false, true} {
		s := New(c, &Loopback{Server: &Server{}, Label: "w0"})
		s.ShipBlocks = ship
		s.NoFallback = true
		got, err := s.RunAll(2)
		if err != nil {
			t.Fatalf("ship=%v: %v", ship, err)
		}
		compareToGolden(t, fmt.Sprintf("v1-store ship=%v", ship), got)
	}
}

// staticFormatsWorker reports a fixed format list and counts queries.
type staticFormatsWorker struct {
	Worker
	formats []int
	calls   atomic.Int32
}

func (w *staticFormatsWorker) BlockFormats(context.Context) ([]int, error) {
	w.calls.Add(1)
	return w.formats, nil
}

// TestWorkerFormatResolution pins the capability plumbing: Loopback
// reports every format up to this build's max; a FormatsWorker answer
// is clamped to that max; a plain Worker defaults to format 1; and
// the resolution is cached — one query per worker per run.
func TestWorkerFormatResolution(t *testing.T) {
	ctx := context.Background()
	lb := &Loopback{Server: &Server{}}
	fs, err := lb.BlockFormats(ctx)
	if err != nil || len(fs) == 0 || fs[0] != 1 || fs[len(fs)-1] != core.DiskFormatVersion {
		t.Fatalf("Loopback formats = %v, %v; want 1..%d", fs, err, core.DiskFormatVersion)
	}
	future := &staticFormatsWorker{Worker: lb, formats: []int{1, core.DiskFormatVersion + 97}}
	s := New(spillN(t, 1), lb, future, &dyingWorker{inner: lb})
	s.init()
	if got := s.workerFormat(ctx, 0); got != core.DiskFormatVersion {
		t.Fatalf("Loopback resolved to format %d, want %d", got, core.DiskFormatVersion)
	}
	if got := s.workerFormat(ctx, 1); got != 1 {
		t.Fatalf("future-format worker resolved to %d, want 1 (unknown formats don't count)", got)
	}
	if got := s.workerFormat(ctx, 2); got != 1 {
		t.Fatalf("plain worker resolved to format %d, want 1", got)
	}
	s.workerFormat(ctx, 1)
	if n := future.calls.Load(); n != 1 {
		t.Fatalf("format queried %d times, want 1 (cached)", n)
	}
}
