package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// BlockCache is the worker-side content-addressed store for shipped
// partition block payloads. Keys are opaque to the cache; schedulers
// key by the partition's content hash when the manifest records one
// ("c/<hash>/v<format>", elasticRun.unitKey) — so a payload cached
// during one run satisfies any later run over *any* corpus containing
// the same partition bytes at the same format, not just the corpus
// that shipped it — and fall back to the fingerprint-scoped CacheKey
// for older manifests. Either way the scheduler learns the worker's
// cached keys from describe and sends a key reference instead of the
// bytes, turning a warm re-run's per-partition ship cost into a few
// hundred bytes.
//
// Entries live on disk under Dir (one file per key, named by the
// key's hash) with an FNV-1a checksum over the payload; Get verifies
// the checksum and the embedded key on every read, so a corrupted
// cache file is evicted and surfaces as ErrCacheCorrupt — the worker
// then reports a cache miss and the scheduler re-ships the bytes
// (degrade to ship mode, never serve corrupt blocks). With Dir empty
// the cache is memory-only: same semantics, process lifetime.
//
// MaxBytes bounds the total payload bytes; Put evicts
// least-recently-used entries to fit. 0 means DefaultCacheBytes.
type BlockCache struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	items map[string]*cacheItem
	order []string // LRU order: order[0] is coldest
	total int64
}

// DefaultCacheBytes bounds a BlockCache that doesn't set its own
// limit: room for a few dozen shipped partitions.
const DefaultCacheBytes = 4 << 30

// ErrCacheMiss reports a key not present in the cache.
var ErrCacheMiss = errors.New("sched: block cache miss")

// ErrCacheCorrupt reports a cache entry whose bytes failed
// verification; the entry has been evicted.
var ErrCacheCorrupt = errors.New("sched: block cache entry corrupt")

type cacheItem struct {
	size int64
	data []byte // memory mode only; disk mode reads the file
}

// cacheMagic heads every cache entry file.
var cacheMagic = []byte("BSKYCACH")

// NewBlockCache opens (or creates) a block cache. dir == "" makes a
// memory-only cache. An existing directory is scanned to rebuild the
// index: unreadable or foreign files are skipped, so a damaged cache
// degrades to cold, never fails open.
func NewBlockCache(dir string, maxBytes int64) (*BlockCache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &BlockCache{dir: dir, maxBytes: maxBytes, items: make(map[string]*cacheItem)}
	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: create cache dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sched: scan cache dir: %w", err)
	}
	// Rebuild coldest-first by file mtime so eviction order survives a
	// restart; ties break on name for determinism.
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var scanned []found
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".blk") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		key, size, err := readEntryHeader(path)
		if err != nil {
			continue // foreign or truncated file; leave it alone
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		scanned = append(scanned, found{key: key, size: size, mtime: fi.ModTime().UnixNano()})
	}
	sort.Slice(scanned, func(i, j int) bool {
		if scanned[i].mtime != scanned[j].mtime {
			return scanned[i].mtime < scanned[j].mtime
		}
		return scanned[i].key < scanned[j].key
	})
	for _, f := range scanned {
		c.items[f.key] = &cacheItem{size: f.size}
		c.order = append(c.order, f.key)
		c.total += f.size
	}
	return c, nil
}

// entryPath names key's file: content-addressed by the key's hash, so
// hostile keys cannot traverse out of the cache directory.
func (c *BlockCache) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:20])+".blk")
}

// readEntryHeader parses an entry file's magic, key, and payload size
// without reading the payload.
func readEntryHeader(path string) (key string, payload int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	head := make([]byte, len(cacheMagic)+4)
	if _, err := io.ReadFull(f, head); err != nil {
		return "", 0, err
	}
	if string(head[:len(cacheMagic)]) != string(cacheMagic) {
		return "", 0, errors.New("bad magic")
	}
	keyLen := binary.BigEndian.Uint32(head[len(cacheMagic):])
	if keyLen == 0 || keyLen > 4096 {
		return "", 0, errors.New("bad key length")
	}
	kb := make([]byte, keyLen)
	if _, err := io.ReadFull(f, kb); err != nil {
		return "", 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		return "", 0, err
	}
	payload = fi.Size() - int64(len(cacheMagic)) - 4 - int64(keyLen) - 8
	if payload < 0 {
		return "", 0, errors.New("truncated entry")
	}
	return string(kb), payload, nil
}

// Put stores blocks under key, evicting cold entries to fit. Oversized
// payloads (bigger than the whole cache) are refused.
func (c *BlockCache) Put(key string, blocks []byte) error {
	if key == "" {
		return errors.New("sched: empty cache key")
	}
	size := int64(len(blocks))
	if size > c.maxBytes {
		return fmt.Errorf("sched: %d-byte payload exceeds the %d-byte cache bound", size, c.maxBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.items[key]; ok {
		c.removeLocked(key, old)
	}
	for c.total+size > c.maxBytes && len(c.order) > 0 {
		coldest := c.order[0]
		c.removeLocked(coldest, c.items[coldest])
	}
	it := &cacheItem{size: size}
	if c.dir == "" {
		it.data = append([]byte(nil), blocks...)
	} else {
		if err := c.writeEntry(key, blocks); err != nil {
			return err
		}
	}
	c.items[key] = it
	c.order = append(c.order, key)
	c.total += size
	return nil
}

// writeEntry persists one entry atomically (write temp, rename).
func (c *BlockCache) writeEntry(key string, blocks []byte) error {
	h := fnv.New64a()
	h.Write(blocks)
	buf := make([]byte, 0, len(cacheMagic)+4+len(key)+8+len(blocks))
	buf = append(buf, cacheMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint64(buf, h.Sum64())
	buf = append(buf, blocks...)
	path := c.entryPath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("sched: write cache entry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sched: commit cache entry: %w", err)
	}
	return nil
}

// Get returns key's payload, verifying the stored checksum and key. A
// missing key returns ErrCacheMiss; an entry that fails verification
// is evicted and returns ErrCacheCorrupt (callers treat both as "the
// bytes must be shipped again").
func (c *BlockCache) Get(key string) ([]byte, error) {
	c.mu.Lock()
	it, ok := c.items[key]
	if ok {
		c.touchLocked(key)
	}
	c.mu.Unlock()
	if !ok {
		return nil, ErrCacheMiss
	}
	if c.dir == "" {
		return it.data, nil
	}
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		c.evict(key)
		return nil, fmt.Errorf("%w: %v", ErrCacheCorrupt, err)
	}
	head := len(cacheMagic) + 4
	if len(data) < head+len(key)+8 ||
		string(data[:len(cacheMagic)]) != string(cacheMagic) ||
		binary.BigEndian.Uint32(data[len(cacheMagic):head]) != uint32(len(key)) ||
		string(data[head:head+len(key)]) != key {
		c.evict(key)
		return nil, fmt.Errorf("%w: malformed entry for %s", ErrCacheCorrupt, key)
	}
	sum := binary.BigEndian.Uint64(data[head+len(key) : head+len(key)+8])
	payload := data[head+len(key)+8:]
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		c.evict(key)
		return nil, fmt.Errorf("%w: checksum mismatch for %s", ErrCacheCorrupt, key)
	}
	return payload, nil
}

// Has reports whether key is cached (without verifying its bytes).
func (c *BlockCache) Has(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Keys lists the cached keys, sorted — what describe advertises.
func (c *BlockCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Bytes reports the total cached payload bytes.
func (c *BlockCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// evict removes key (after a verification failure).
func (c *BlockCache) evict(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if it, ok := c.items[key]; ok {
		c.removeLocked(key, it)
	}
}

// removeLocked drops one entry from the index, the LRU order, and disk.
func (c *BlockCache) removeLocked(key string, it *cacheItem) {
	delete(c.items, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.total -= it.size
	if c.dir != "" {
		os.Remove(c.entryPath(key))
	}
}

// touchLocked moves key to the warm end of the LRU order.
func (c *BlockCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i], c.order[i+1:]...), key)
			return
		}
	}
}

// CacheKey composes the content address of one shipped partition
// payload: the corpus manifest's fingerprint, the partition index, and
// the block format version of the bytes.
func CacheKey(fingerprint string, part, format int) string {
	return fmt.Sprintf("%s/%d/v%d", fingerprint, part, format)
}
