// Package relay implements the Relay (bsky.network in production): the
// component that crawls every known PDS, mirrors all repositories, and
// re-publishes the combined event stream as the Firehose with a
// three-day retention window (§2, "The Relay").
//
// The paper's entire measurement methodology leans on this component:
// sync.listRepos enumerates every user, sync.getRepo serves cached
// copies of all repositories (even self-hosted ones), and
// subscribeRepos delivers the real-time Firehose.
package relay

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blueskies/internal/car"
	"blueskies/internal/cbor"
	"blueskies/internal/cid"
	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/mst"
	"blueskies/internal/pds"
	"blueskies/internal/xrpc"
)

// FirehoseRetention is the production Firehose retention window the
// paper reports (three days).
const FirehoseRetention = 72 * time.Hour

// mirror is the relay's cached copy of one repository.
type mirror struct {
	did         identity.DID
	store       *mst.MemBlockStore
	tree        *mst.Tree
	head        cid.CID
	rev         string
	commitBlock []byte
	handle      string
	tombstoned  bool
}

// Config configures a relay.
type Config struct {
	// Clock supplies timestamps; time.Now if nil.
	Clock func() time.Time
	// Retention bounds the Firehose backlog; FirehoseRetention if 0.
	Retention time.Duration
	// MaxEvents caps the backlog regardless of age (0 = unbounded).
	MaxEvents int
}

// Relay aggregates PDS event streams into the Firehose.
type Relay struct {
	clock func() time.Time

	mu      sync.RWMutex
	mirrors map[identity.DID]*mirror
	sources map[string]func() // pdsURL → cancel

	seq  *events.Sequencer
	mux  *xrpc.Mux
	http *http.Server
	base string
}

// New creates a relay.
func New(cfg Config) *Relay {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	retention := cfg.Retention
	if retention == 0 {
		retention = FirehoseRetention
	}
	r := &Relay{
		clock:   clock,
		mirrors: make(map[identity.DID]*mirror),
		sources: make(map[string]func()),
		seq:     events.NewSequencer(retention, cfg.MaxEvents),
	}
	r.seq.SetClock(clock)
	r.mux = xrpc.NewMux()
	r.register()
	return r
}

// Start begins serving on a loopback port.
func (r *Relay) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	r.base = "http://" + ln.Addr().String()
	r.http = &http.Server{Handler: r.mux}
	go func() { _ = r.http.Serve(ln) }()
	return nil
}

// URL returns the relay's base URL.
func (r *Relay) URL() string { return r.base }

// Close stops the relay and all PDS subscriptions.
func (r *Relay) Close() error {
	r.mu.Lock()
	for _, cancel := range r.sources {
		cancel()
	}
	r.sources = map[string]func(){}
	r.mu.Unlock()
	if r.http != nil {
		return r.http.Close()
	}
	return nil
}

// Sequencer exposes the Firehose sequencer.
func (r *Relay) Sequencer() *events.Sequencer { return r.seq }

// MirrorCount reports the number of mirrored repositories.
func (r *Relay) MirrorCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.mirrors)
}

// AddPDS registers a PDS: performs a full crawl of its repositories
// and subscribes to its event stream for incremental updates.
func (r *Relay) AddPDS(pdsURL string) error {
	if err := r.crawl(pdsURL); err != nil {
		return err
	}
	sub, err := events.Subscribe(pdsURL, "com.atproto.sync.subscribeRepos", 0)
	if err != nil {
		return fmt.Errorf("relay: subscribe to %s: %w", pdsURL, err)
	}
	done := make(chan struct{})
	cancel := func() {
		close(done)
		sub.Close()
	}
	r.mu.Lock()
	if _, dup := r.sources[pdsURL]; dup {
		r.mu.Unlock()
		cancel()
		return fmt.Errorf("relay: PDS %s already registered", pdsURL)
	}
	r.sources[pdsURL] = cancel
	r.mu.Unlock()
	go r.consume(sub, done)
	return nil
}

// crawl performs the initial full sync of a PDS (listRepos + getRepo).
func (r *Relay) crawl(pdsURL string) error {
	client := xrpc.NewClient(pdsURL)
	ctx := context.Background()
	cursor := ""
	for {
		params := url.Values{"limit": {"100"}}
		if cursor != "" {
			params.Set("cursor", cursor)
		}
		var page struct {
			Cursor string `json:"cursor"`
			Repos  []struct {
				DID string `json:"did"`
			} `json:"repos"`
		}
		if err := client.Query(ctx, "com.atproto.sync.listRepos", params, &page); err != nil {
			return fmt.Errorf("relay: listRepos on %s: %w", pdsURL, err)
		}
		for _, info := range page.Repos {
			if err := r.fetchRepo(client, identity.DID(info.DID)); err != nil {
				return err
			}
		}
		if page.Cursor == "" {
			return nil
		}
		cursor = page.Cursor
	}
}

func (r *Relay) fetchRepo(client *xrpc.Client, did identity.DID) error {
	carBytes, err := client.QueryBytes(context.Background(), "com.atproto.sync.getRepo",
		url.Values{"did": {string(did)}})
	if err != nil {
		return fmt.Errorf("relay: getRepo %s: %w", did, err)
	}
	m, err := mirrorFromCAR(did, carBytes)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.mirrors[did] = m
	r.mu.Unlock()
	return nil
}

func mirrorFromCAR(did identity.DID, carBytes []byte) (*mirror, error) {
	cr, err := car.NewReader(bytes.NewReader(carBytes))
	if err != nil {
		return nil, err
	}
	if len(cr.Roots()) != 1 {
		return nil, errors.New("relay: repo CAR must have one root")
	}
	root := cr.Roots()[0]
	store := mst.NewMemBlockStore()
	blocks, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	for _, b := range blocks {
		store.Put(b.CID.Codec(), b.Data)
	}
	commitData, ok := store.Get(root)
	if !ok {
		return nil, errors.New("relay: CAR missing commit")
	}
	var commit struct {
		DID  string  `cbor:"did"`
		Data cid.CID `cbor:"data"`
		Rev  string  `cbor:"rev"`
	}
	if err := cbor.Unmarshal(commitData, &commit); err != nil {
		return nil, err
	}
	if commit.DID != string(did) {
		return nil, fmt.Errorf("relay: CAR is for %s, expected %s", commit.DID, did)
	}
	tree, err := mst.Load(store, commit.Data)
	if err != nil {
		return nil, err
	}
	return &mirror{
		did:         did,
		store:       store,
		tree:        tree,
		head:        root,
		rev:         commit.Rev,
		commitBlock: commitData,
	}, nil
}

// consume applies one PDS's event stream and re-sequences it onto the
// Firehose.
func (r *Relay) consume(sub *events.Subscription, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		ev, err := sub.Next()
		if err != nil {
			return
		}
		r.Ingest(ev)
	}
}

// Ingest applies one upstream event to the mirrors and re-emits it on
// the Firehose with a relay sequence number. Exposed for in-process
// wiring and deterministic tests.
func (r *Relay) Ingest(ev any) {
	switch e := ev.(type) {
	case *events.Commit:
		if err := r.applyCommit(e); err != nil {
			return
		}
		_, _ = r.seq.Emit(func(seq int64) any {
			cp := *e
			cp.Seq = seq
			return &cp
		})
	case *events.Identity:
		_, _ = r.seq.Emit(func(seq int64) any {
			cp := *e
			cp.Seq = seq
			return &cp
		})
	case *events.Handle:
		r.mu.Lock()
		if m, ok := r.mirrors[identity.DID(e.DID)]; ok {
			m.handle = e.Handle
		}
		r.mu.Unlock()
		_, _ = r.seq.Emit(func(seq int64) any {
			cp := *e
			cp.Seq = seq
			return &cp
		})
	case *events.Tombstone:
		r.mu.Lock()
		if m, ok := r.mirrors[identity.DID(e.DID)]; ok {
			m.tombstoned = true
		}
		r.mu.Unlock()
		_, _ = r.seq.Emit(func(seq int64) any {
			cp := *e
			cp.Seq = seq
			return &cp
		})
	}
}

func (r *Relay) applyCommit(e *events.Commit) error {
	did := identity.DID(e.Repo)
	cr, err := car.NewReader(bytes.NewReader(e.Blocks))
	if err != nil {
		return err
	}
	blocks, err := cr.ReadAll()
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.mirrors[did]
	if !ok {
		// A repo we have not crawled yet (e.g. created after AddPDS):
		// start an empty mirror; ops carry everything needed.
		m = &mirror{did: did, store: mst.NewMemBlockStore(), tree: mst.New()}
		r.mirrors[did] = m
	}
	for _, b := range blocks {
		m.store.Put(b.CID.Codec(), b.Data)
		if b.CID.Equal(e.Commit) {
			m.commitBlock = b.Data
		}
	}
	for _, op := range e.Ops {
		switch op.Action {
		case "create", "update":
			if op.CID == nil {
				return fmt.Errorf("relay: %s op without cid", op.Action)
			}
			if err := m.tree.Put(op.Path, *op.CID); err != nil {
				return err
			}
		case "delete":
			m.tree.Delete(op.Path)
		}
	}
	m.head = e.Commit
	m.rev = e.Rev
	return nil
}

// ExportCAR reconstructs the full repo archive for did from the
// mirror: commit block, canonical MST nodes, and record blocks.
func (r *Relay) ExportCAR(did identity.DID) ([]byte, error) {
	r.mu.RLock()
	m, ok := r.mirrors[did]
	r.mu.RUnlock()
	if !ok || m.tombstoned {
		return nil, xrpc.ErrNotFound("repo %s not mirrored", did)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	nodeStore := mst.NewMemBlockStore()
	if _, err := m.tree.Build(nodeStore); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	cw, err := car.NewWriter(&buf, m.head)
	if err != nil {
		return nil, err
	}
	if m.commitBlock == nil {
		return nil, errors.New("relay: mirror missing commit block")
	}
	if err := cw.WriteBlock(car.Block{CID: m.head, Data: m.commitBlock}); err != nil {
		return nil, err
	}
	for _, c := range nodeStore.CIDs() {
		data, _ := nodeStore.Get(c)
		if err := cw.WriteBlock(car.Block{CID: c, Data: data}); err != nil {
			return nil, err
		}
	}
	for _, entry := range m.tree.Entries() {
		data, ok := m.store.Get(entry.Value)
		if !ok {
			return nil, fmt.Errorf("relay: mirror missing record block %s", entry.Value)
		}
		if err := cw.WriteBlock(car.Block{CID: entry.Value, Data: data}); err != nil {
			return nil, err
		}
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RepoInfo summarizes one mirrored repository for listRepos.
type RepoInfo struct {
	DID  string `json:"did"`
	Head string `json:"head"`
	Rev  string `json:"rev"`
}

// ListRepos returns mirrored repos after cursor (a DID), up to limit.
func (r *Relay) ListRepos(cursor string, limit int) (repos []RepoInfo, nextCursor string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dids := make([]string, 0, len(r.mirrors))
	for did, m := range r.mirrors {
		if !m.tombstoned {
			dids = append(dids, string(did))
		}
	}
	sort.Strings(dids)
	for _, did := range dids {
		if cursor != "" && did <= cursor {
			continue
		}
		m := r.mirrors[identity.DID(did)]
		repos = append(repos, RepoInfo{DID: did, Head: m.head.String(), Rev: m.rev})
		if limit > 0 && len(repos) >= limit {
			nextCursor = did
			break
		}
	}
	return repos, nextCursor
}

func (r *Relay) register() {
	r.mux.Query("com.atproto.sync.listRepos", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		limit := 100
		if l := params.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				return nil, xrpc.ErrInvalidRequest("bad limit %q", l)
			}
			limit = n
		}
		repos, next := r.ListRepos(params.Get("cursor"), limit)
		resp := map[string]any{"repos": repos}
		if next != "" {
			resp["cursor"] = next
		}
		return resp, nil
	})
	r.mux.Query("com.atproto.sync.getRepo", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		data, err := r.ExportCAR(identity.DID(params.Get("did")))
		if err != nil {
			return nil, err
		}
		return xrpc.Raw{ContentType: "application/vnd.ipld.car", Data: data}, nil
	})
	r.mux.Stream("com.atproto.sync.subscribeRepos", func(w http.ResponseWriter, req *http.Request) {
		pds.ServeStream(r.seq, w, req)
	})
}

// WaitForMirrors polls until the relay mirrors at least n repos or the
// timeout elapses; a convenience for tests and examples wiring live
// streams.
func (r *Relay) WaitForMirrors(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.MirrorCount() >= n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("relay: only %d mirrors after %v", r.MirrorCount(), timeout)
}

// FirehoseURL returns the ws endpoint path clients subscribe to.
func (r *Relay) FirehoseURL() string {
	return strings.TrimSuffix(r.base, "/") + "/xrpc/com.atproto.sync.subscribeRepos"
}
