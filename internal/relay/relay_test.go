package relay

import (
	"bytes"
	"context"
	"net/url"
	"testing"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/lexicon"
	"blueskies/internal/pds"
	"blueskies/internal/repo"
	"blueskies/internal/xrpc"
)

var ts = time.Date(2024, 4, 1, 12, 0, 0, 0, time.UTC)

func startPDS(t *testing.T) *pds.Server {
	t.Helper()
	s := pds.New(pds.Config{Hostname: "pds.test", Clock: func() time.Time { return ts }})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func startRelay(t *testing.T) *Relay {
	t.Helper()
	r := New(Config{Clock: func() time.Time { return ts }})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestInitialCrawlMirrorsExistingRepos(t *testing.T) {
	p := startPDS(t)
	for _, h := range []string{"a", "b", "c"} {
		acct, err := p.CreateAccount(identity.Handle(h + ".bsky.social"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("hi "+h, nil, ts)); err != nil {
			t.Fatal(err)
		}
	}
	r := startRelay(t)
	if err := r.AddPDS(p.URL()); err != nil {
		t.Fatal(err)
	}
	if r.MirrorCount() != 3 {
		t.Fatalf("mirrors = %d", r.MirrorCount())
	}
}

func TestLiveCommitPropagation(t *testing.T) {
	p := startPDS(t)
	acct, _ := p.CreateAccount("live.bsky.social")
	r := startRelay(t)
	if err := r.AddPDS(p.URL()); err != nil {
		t.Fatal(err)
	}

	// Subscribe to the relay Firehose before the write.
	sub, err := events.Subscribe(r.URL(), "com.atproto.sync.subscribeRepos", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if _, err := p.CreateRecord(acct.DID, lexicon.Post, "3kbbbbbbbbbb2", lexicon.NewPost("fan out", nil, ts)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ev, err := sub.NextTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if commit, ok := ev.(*events.Commit); ok && commit.Repo == string(acct.DID) {
			if len(commit.Ops) == 1 && commit.Ops[0].Path == lexicon.Post+"/3kbbbbbbbbbb2" {
				return // success
			}
		}
	}
	t.Fatal("commit never arrived on the firehose")
}

func TestRelayGetRepoReconstruction(t *testing.T) {
	p := startPDS(t)
	acct, _ := p.CreateAccount("repro.bsky.social")
	_, _ = p.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("one", nil, ts))
	r := startRelay(t)
	if err := r.AddPDS(p.URL()); err != nil {
		t.Fatal(err)
	}
	// A post-crawl live write must be reflected in the export.
	_, _ = p.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa3", lexicon.NewPost("two", nil, ts))

	var carBytes []byte
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var err error
		carBytes, err = r.ExportCAR(acct.DID)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := repo.LoadCAR(bytes.NewReader(carBytes), nil)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := loaded.List(lexicon.Post)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 2 {
			// Both posts present; verify contents.
			texts := map[string]bool{}
			for _, rec := range recs {
				texts[lexicon.PostText(rec.Value)] = true
			}
			if !texts["one"] || !texts["two"] {
				t.Fatalf("texts = %v", texts)
			}
			// Heads must match the PDS's.
			if loaded.Head() != acct.Repo.Head() {
				t.Fatalf("relay head %s != pds head %s", loaded.Head(), acct.Repo.Head())
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("live write never reached the mirror")
}

func TestRelayListReposXRPC(t *testing.T) {
	p := startPDS(t)
	for _, h := range []string{"x", "y"} {
		_, _ = p.CreateAccount(identity.Handle(h + ".bsky.social"))
	}
	r := startRelay(t)
	if err := r.AddPDS(p.URL()); err != nil {
		t.Fatal(err)
	}
	client := xrpc.NewClient(r.URL())
	var out struct {
		Repos []RepoInfo `json:"repos"`
	}
	if err := client.Query(context.Background(), "com.atproto.sync.listRepos", url.Values{"limit": {"10"}}, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Repos) != 2 {
		t.Fatalf("repos = %+v", out.Repos)
	}
	for _, info := range out.Repos {
		if info.Head == "" || info.Rev == "" {
			t.Fatalf("incomplete info: %+v", info)
		}
	}
}

func TestIngestDeterministic(t *testing.T) {
	// Drive the relay without sockets via Ingest.
	r := New(Config{Clock: func() time.Time { return ts }})
	p := pds.New(pds.Config{Hostname: "inproc", Clock: func() time.Time { return ts }})
	acct, err := p.CreateAccount("inproc.bsky.social")
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := p.Sequencer().Subscribe(16)
	defer cancel()
	if _, err := p.CreateRecord(acct.DID, lexicon.Post, "3kaaaaaaaaaa2", lexicon.NewPost("in process", nil, ts)); err != nil {
		t.Fatal(err)
	}
	// Drain the PDS events into the relay synchronously.
	for len(ch) > 0 {
		frame := <-ch
		ev, err := events.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		r.Ingest(ev)
	}
	if r.MirrorCount() != 1 {
		t.Fatalf("mirrors = %d", r.MirrorCount())
	}
	carBytes, err := r.ExportCAR(acct.DID)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := repo.LoadCAR(bytes.NewReader(carBytes), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := loaded.Get(lexicon.Post, "3kaaaaaaaaaa2")
	if err != nil {
		t.Fatal(err)
	}
	if lexicon.PostText(rec.Value) != "in process" {
		t.Fatal("record lost through ingest path")
	}
}

func TestTombstoneHidesRepo(t *testing.T) {
	r := New(Config{})
	r.Ingest(&events.Tombstone{Seq: 1, DID: "did:plc:abcdefghijklmnopqrstuvwx"})
	// Tombstone for unknown repo: no crash, no mirror.
	if r.MirrorCount() != 0 {
		t.Fatal("tombstone must not create mirrors")
	}
}

func TestDuplicateAddPDSRejected(t *testing.T) {
	p := startPDS(t)
	r := startRelay(t)
	if err := r.AddPDS(p.URL()); err != nil {
		t.Fatal(err)
	}
	if err := r.AddPDS(p.URL()); err == nil {
		t.Fatal("duplicate AddPDS must fail")
	}
}

func TestFirehoseRetentionWindow(t *testing.T) {
	now := ts
	clock := func() time.Time { return now }
	r := New(Config{Clock: clock})
	r.Ingest(&events.Identity{Seq: 1, DID: "did:plc:old", Time: events.FormatTime(now)})
	now = now.Add(FirehoseRetention + time.Hour)
	r.Ingest(&events.Identity{Seq: 2, DID: "did:plc:new", Time: events.FormatTime(now)})
	frames, outdated := r.Sequencer().Backfill(0)
	if !outdated {
		t.Fatal("cursor 0 must be outdated after retention lapse")
	}
	if len(frames) != 1 {
		t.Fatalf("retained %d frames", len(frames))
	}
}
