package events

import (
	"fmt"
	"strings"
	"time"

	"blueskies/internal/ws"
)

// Subscription is a client-side event stream connection (Firehose or
// labeler stream).
type Subscription struct {
	conn *ws.Conn
}

// Subscribe dials the stream NSID on a service base URL with an
// optional cursor (0 = from the start of retention; negative = live
// only, i.e. current sequence head).
func Subscribe(baseURL, nsid string, cursor int64) (*Subscription, error) {
	wsURL := "ws" + strings.TrimPrefix(baseURL, "http")
	u := fmt.Sprintf("%s/xrpc/%s?cursor=%d", strings.TrimSuffix(wsURL, "/"), nsid, cursor)
	conn, err := ws.Dial(u, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Subscription{conn: conn}, nil
}

// Next blocks for the next decoded event.
func (s *Subscription) Next() (any, error) {
	_, frame, err := s.conn.ReadMessage()
	if err != nil {
		return nil, err
	}
	return Decode(frame)
}

// NextTimeout is Next with a read deadline.
func (s *Subscription) NextTimeout(d time.Duration) (any, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	defer func() { _ = s.conn.SetReadDeadline(time.Time{}) }()
	return s.Next()
}

// Close terminates the subscription.
func (s *Subscription) Close() error { return s.conn.Close() }
