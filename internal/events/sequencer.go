package events

import (
	"sync"
	"time"
)

// stored is one retained frame.
type stored struct {
	seq   int64
	time  time.Time
	frame []byte
}

// Sequencer assigns sequence numbers to events, retains a bounded
// backlog for cursor-based backfill, and fans frames out to live
// subscribers. It is the core of both the PDS event stream and the
// Relay Firehose (which the paper notes retains three days of events).
type Sequencer struct {
	mu        sync.Mutex
	nextSeq   int64
	backlog   []stored
	retention time.Duration // 0 = keep everything
	maxEvents int           // 0 = unbounded
	subs      map[int64]chan []byte
	nextSub   int64
	now       func() time.Time
}

// NewSequencer creates a sequencer with the given retention window and
// event cap (either may be zero for "unlimited").
func NewSequencer(retention time.Duration, maxEvents int) *Sequencer {
	return &Sequencer{
		nextSeq:   1,
		retention: retention,
		maxEvents: maxEvents,
		subs:      make(map[int64]chan []byte),
		now:       time.Now,
	}
}

// SetClock overrides the wall clock (virtual time in simulations).
func (s *Sequencer) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Next returns the sequence number the next event will receive.
func (s *Sequencer) Next() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// Emit assigns the next sequence number, invokes build with it to
// produce the event, encodes it, retains the frame, and fans it out.
func (s *Sequencer) Emit(build func(seq int64) any) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	ev := build(seq)
	frame, err := Encode(ev)
	if err != nil {
		return 0, err
	}
	s.nextSeq++
	now := s.now()
	s.backlog = append(s.backlog, stored{seq: seq, time: now, frame: frame})
	s.trimLocked(now)
	for _, ch := range s.subs {
		select {
		case ch <- frame:
		default:
			// Slow subscriber: drop rather than block the stream.
		}
	}
	return seq, nil
}

func (s *Sequencer) trimLocked(now time.Time) {
	if s.maxEvents > 0 && len(s.backlog) > s.maxEvents {
		s.backlog = s.backlog[len(s.backlog)-s.maxEvents:]
	}
	if s.retention > 0 {
		cutoff := now.Add(-s.retention)
		i := 0
		for i < len(s.backlog) && s.backlog[i].time.Before(cutoff) {
			i++
		}
		s.backlog = s.backlog[i:]
	}
}

// TrimTo drops retained frames with seq ≤ cursor. A pipeline that owns
// a sequencer exclusively (one consumer, no cursor-based backfill
// clients) releases backlog memory as it durably processes frames;
// shared sequencers must keep their retention window instead.
func (s *Sequencer) TrimTo(cursor int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.backlog) && s.backlog[i].seq <= cursor {
		i++
	}
	s.backlog = s.backlog[i:]
}

// OldestSeq returns the lowest retained sequence number, or the next
// seq when the backlog is empty.
func (s *Sequencer) OldestSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.backlog) == 0 {
		return s.nextSeq
	}
	return s.backlog[0].seq
}

// Backfill returns retained frames with seq > cursor, and whether the
// cursor predates retention (meaning events were missed).
func (s *Sequencer) Backfill(cursor int64) (frames [][]byte, outdated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.backlog) > 0 && cursor < s.backlog[0].seq-1 {
		outdated = true
	}
	for _, st := range s.backlog {
		if st.seq > cursor {
			frames = append(frames, st.frame)
		}
	}
	return frames, outdated
}

// Subscribe registers a live subscriber. Frames emitted after the call
// are delivered on the channel; cancel must be called to release it.
func (s *Sequencer) Subscribe(buffer int) (ch <-chan []byte, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSub
	s.nextSub++
	c := make(chan []byte, buffer)
	s.subs[id] = c
	return c, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
}

// SubscriberCount reports the number of live subscribers.
func (s *Sequencer) SubscriberCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// BacklogLen reports the number of retained frames.
func (s *Sequencer) BacklogLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.backlog)
}
