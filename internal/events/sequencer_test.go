package events

import (
	"testing"
	"time"
)

func emitIdentity(t *testing.T, s *Sequencer, did string) int64 {
	t.Helper()
	seq, err := s.Emit(func(seq int64) any {
		return &Identity{Seq: seq, DID: did, Time: "2024-03-06T00:00:00.000Z"}
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestSequencerAssignsMonotonicSeqs(t *testing.T) {
	s := NewSequencer(0, 0)
	var prev int64
	for i := 0; i < 10; i++ {
		seq := emitIdentity(t, s, "did:plc:x")
		if seq <= prev {
			t.Fatalf("seq %d after %d", seq, prev)
		}
		prev = seq
	}
}

func TestBackfillFromCursor(t *testing.T) {
	s := NewSequencer(0, 0)
	for i := 0; i < 5; i++ {
		emitIdentity(t, s, "did:plc:x")
	}
	frames, outdated := s.Backfill(2)
	if outdated {
		t.Fatal("cursor 2 is within retention")
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
	ev, err := Decode(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if Seq(ev) != 3 {
		t.Fatalf("first backfilled seq = %d", Seq(ev))
	}
}

func TestBackfillZeroCursorReturnsAll(t *testing.T) {
	s := NewSequencer(0, 0)
	for i := 0; i < 3; i++ {
		emitIdentity(t, s, "did:plc:x")
	}
	frames, _ := s.Backfill(0)
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
}

func TestRetentionByCount(t *testing.T) {
	s := NewSequencer(0, 3)
	for i := 0; i < 10; i++ {
		emitIdentity(t, s, "did:plc:x")
	}
	if s.BacklogLen() != 3 {
		t.Fatalf("backlog = %d", s.BacklogLen())
	}
	if s.OldestSeq() != 8 {
		t.Fatalf("oldest = %d", s.OldestSeq())
	}
	_, outdated := s.Backfill(1)
	if !outdated {
		t.Fatal("cursor 1 must be reported outdated")
	}
}

func TestRetentionByTime(t *testing.T) {
	s := NewSequencer(72*time.Hour, 0) // the Firehose's 3-day window
	now := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return now })
	emitIdentity(t, s, "did:plc:old")
	now = now.Add(96 * time.Hour) // 4 days later
	emitIdentity(t, s, "did:plc:new")
	if s.BacklogLen() != 1 {
		t.Fatalf("backlog = %d, want 1 (old event expired)", s.BacklogLen())
	}
	frames, outdated := s.Backfill(0)
	if !outdated {
		t.Fatal("cursor 0 predates retention")
	}
	ev, _ := Decode(frames[0])
	if ev.(*Identity).DID != "did:plc:new" {
		t.Fatal("wrong event retained")
	}
}

func TestSubscribeDelivery(t *testing.T) {
	s := NewSequencer(0, 0)
	ch, cancel := s.Subscribe(10)
	defer cancel()
	emitIdentity(t, s, "did:plc:x")
	select {
	case frame := <-ch:
		ev, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if ev.(*Identity).DID != "did:plc:x" {
			t.Fatal("wrong event delivered")
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestSubscribeCancelIdempotent(t *testing.T) {
	s := NewSequencer(0, 0)
	_, cancel := s.Subscribe(1)
	cancel()
	cancel() // must not panic
	if s.SubscriberCount() != 0 {
		t.Fatal("subscriber not removed")
	}
}

func TestSlowSubscriberDoesNotBlock(t *testing.T) {
	s := NewSequencer(0, 0)
	_, cancel := s.Subscribe(1) // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			emitIdentity(t, s, "did:plc:x")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("emit blocked on slow subscriber")
	}
}
