// Package events defines the event-stream wire format shared by the
// Relay Firehose (com.atproto.sync.subscribeRepos) and Labeler streams
// (com.atproto.label.subscribeLabels): each WebSocket binary message
// carries two concatenated DAG-CBOR documents — a header {op, t}
// followed by the typed body.
//
// The event types mirror Table 1 of the paper: repo commits (99.78 %
// of traffic), identity updates, handle updates, and tombstones.
package events

import (
	"fmt"
	"time"

	"blueskies/internal/cbor"
	"blueskies/internal/cid"
)

// Event type discriminators carried in the frame header.
const (
	TypeCommit    = "#commit"
	TypeIdentity  = "#identity"
	TypeHandle    = "#handle"
	TypeTombstone = "#tombstone"
	TypeLabels    = "#labels"
	TypeInfo      = "#info"
	TypeSim       = "#sim.block"
)

// header is the first CBOR document of each frame.
type header struct {
	Op int    `cbor:"op"`
	T  string `cbor:"t,omitempty"`
}

// RepoOp is one record operation inside a commit event.
type RepoOp struct {
	Action string   `cbor:"action"` // create | update | delete
	Path   string   `cbor:"path"`   // collection/rkey
	CID    *cid.CID `cbor:"cid"`    // nil for deletes
}

// Commit is a repository-commit event: an update to the content of a
// user's repository.
type Commit struct {
	Seq    int64    `cbor:"seq"`
	Repo   string   `cbor:"repo"` // the DID
	Rev    string   `cbor:"rev"`
	Commit cid.CID  `cbor:"commit"`
	Ops    []RepoOp `cbor:"ops"`
	Blocks []byte   `cbor:"blocks"` // CAR slice with the new blocks
	Time   string   `cbor:"time"`
}

// Identity is a DID-document cache-invalidation event.
type Identity struct {
	Seq  int64  `cbor:"seq"`
	DID  string `cbor:"did"`
	Time string `cbor:"time"`
}

// Handle is a user handle-change event.
type Handle struct {
	Seq    int64  `cbor:"seq"`
	DID    string `cbor:"did"`
	Handle string `cbor:"handle"` // the new handle
	Time   string `cbor:"time"`
}

// Tombstone marks an account deletion.
type Tombstone struct {
	Seq  int64  `cbor:"seq"`
	DID  string `cbor:"did"`
	Time string `cbor:"time"`
}

// Label is one moderation label as emitted on a labeler stream:
// src applies val to uri; neg rescinds a previous application.
//
// The sim* fields are a simulator extension: the measurement replay
// carries the nanosecond timestamps and subject joins that a live
// collector reconstructs from other datasets (post creation times,
// subject kinds). Real streams omit them; decoders that don't know
// them ignore the extra keys.
type Label struct {
	Src string `cbor:"src"` // labeler DID
	URI string `cbor:"uri"` // subject: at:// URI or a bare DID
	Val string `cbor:"val"`
	Neg bool   `cbor:"neg,omitempty"`
	CTS string `cbor:"cts"` // creation timestamp

	SimApplied int64  `cbor:"simApplied,omitempty"` // UnixNano of application
	SimSubject int64  `cbor:"simSubject,omitempty"` // UnixNano of subject creation
	SimFresh   bool   `cbor:"simFresh,omitempty"`   // subject first seen in-window
	SimKind    string `cbor:"simKind,omitempty"`    // subject kind (core.SubjectKind)
}

// Labels is a labeler stream frame carrying one or more labels.
type Labels struct {
	Seq    int64   `cbor:"seq"`
	Labels []Label `cbor:"labels"`
}

// Info is an informational/service frame.
type Info struct {
	Name    string `cbor:"name"`
	Message string `cbor:"message,omitempty"`
}

// Sim is a simulator extension frame: an opaque CBOR body under a kind
// discriminator. The dataset replay uses it to stream measurement
// records (users, posts, daily activity, …) that the live protocol
// delivers out of band, plus its end-of-stream marker; see
// core.BlockEvent / core.DecodeStreamEvent for the body codec.
type Sim struct {
	Seq  int64  `cbor:"seq"`
	Kind string `cbor:"kind"`
	Body []byte `cbor:"body,omitempty"`
}

// Seq returns the sequence number of any sequenced event, or -1.
func Seq(ev any) int64 {
	switch e := ev.(type) {
	case *Commit:
		return e.Seq
	case *Identity:
		return e.Seq
	case *Handle:
		return e.Seq
	case *Tombstone:
		return e.Seq
	case *Labels:
		return e.Seq
	case *Sim:
		return e.Seq
	}
	return -1
}

// TypeOf returns the frame discriminator for an event value.
func TypeOf(ev any) (string, error) {
	switch ev.(type) {
	case *Commit:
		return TypeCommit, nil
	case *Identity:
		return TypeIdentity, nil
	case *Handle:
		return TypeHandle, nil
	case *Tombstone:
		return TypeTombstone, nil
	case *Labels:
		return TypeLabels, nil
	case *Info:
		return TypeInfo, nil
	case *Sim:
		return TypeSim, nil
	}
	return "", fmt.Errorf("events: unknown event type %T", ev)
}

// Encode renders an event as a binary frame (header ‖ body).
func Encode(ev any) ([]byte, error) {
	t, err := TypeOf(ev)
	if err != nil {
		return nil, err
	}
	hdr, err := cbor.Marshal(header{Op: 1, T: t})
	if err != nil {
		return nil, err
	}
	body, err := cbor.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return append(hdr, body...), nil
}

// Decode parses a binary frame into its typed event.
func Decode(frame []byte) (any, error) {
	rawHdr, n, err := cbor.DecodePrefix(frame)
	if err != nil {
		return nil, fmt.Errorf("events: frame header: %w", err)
	}
	hm, ok := rawHdr.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("events: header is %T, want map", rawHdr)
	}
	op, _ := hm["op"].(int64)
	if op != 1 {
		return nil, fmt.Errorf("events: error frame (op=%d)", op)
	}
	t, _ := hm["t"].(string)
	body := frame[n:]
	var ev any
	switch t {
	case TypeCommit:
		ev = new(Commit)
	case TypeIdentity:
		ev = new(Identity)
	case TypeHandle:
		ev = new(Handle)
	case TypeTombstone:
		ev = new(Tombstone)
	case TypeLabels:
		ev = new(Labels)
	case TypeInfo:
		ev = new(Info)
	case TypeSim:
		ev = new(Sim)
	default:
		return nil, fmt.Errorf("events: unknown frame type %q", t)
	}
	if err := cbor.Unmarshal(body, ev); err != nil {
		return nil, fmt.Errorf("events: decode %s body: %w", t, err)
	}
	return ev, nil
}

// FormatTime renders event timestamps (RFC 3339 with milliseconds).
func FormatTime(t time.Time) string {
	return t.UTC().Format("2006-01-02T15:04:05.000Z")
}

// ParseTime parses an event timestamp.
func ParseTime(s string) (time.Time, error) {
	for _, layout := range []string{"2006-01-02T15:04:05.000Z", time.RFC3339, time.RFC3339Nano} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("events: bad timestamp %q", s)
}
