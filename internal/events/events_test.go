package events

import (
	"reflect"
	"testing"
	"time"

	"blueskies/internal/cid"
)

func TestCommitRoundTrip(t *testing.T) {
	c := cid.SumCBOR([]byte("commit"))
	rc := cid.SumCBOR([]byte("record"))
	in := &Commit{
		Seq:    42,
		Repo:   "did:plc:abcdefghijklmnopqrstuvwx",
		Rev:    "3kdgeujwlq32y",
		Commit: c,
		Ops: []RepoOp{
			{Action: "create", Path: "app.bsky.feed.post/3kdgeujwlq32y", CID: &rc},
			{Action: "delete", Path: "app.bsky.feed.like/3kaaaaaaaaaa2"},
		},
		Blocks: []byte{1, 2, 3},
		Time:   FormatTime(time.Date(2024, 3, 6, 0, 0, 0, 0, time.UTC)),
	}
	frame, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*Commit)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, got)
	}
}

func TestAllEventTypesRoundTrip(t *testing.T) {
	evs := []any{
		&Identity{Seq: 1, DID: "did:plc:x", Time: "2024-03-06T00:00:00.000Z"},
		&Handle{Seq: 2, DID: "did:plc:x", Handle: "new.example.com", Time: "2024-03-06T00:00:00.000Z"},
		&Tombstone{Seq: 3, DID: "did:plc:x", Time: "2024-03-06T00:00:00.000Z"},
		&Labels{Seq: 4, Labels: []Label{
			{Src: "did:plc:labeler", URI: "at://did:plc:x/app.bsky.feed.post/3k", Val: "porn", CTS: "2024-04-01T00:00:00.000Z"},
			{Src: "did:plc:labeler", URI: "did:plc:x", Val: "spam", Neg: true, CTS: "2024-04-02T00:00:00.000Z"},
		}},
		&Info{Name: "OutdatedCursor", Message: "cursor beyond retention"},
	}
	for _, in := range evs {
		frame, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%T): %v", in, err)
		}
		out, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode(%T): %v", in, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip mismatch for %T:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

func TestSeqExtraction(t *testing.T) {
	if Seq(&Commit{Seq: 9}) != 9 || Seq(&Labels{Seq: 7}) != 7 {
		t.Fatal("Seq extraction wrong")
	}
	if Seq(&Info{}) != -1 {
		t.Fatal("Info has no seq")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty frame must fail")
	}
	if _, err := Decode([]byte{0xff, 0xff}); err == nil {
		t.Fatal("garbage frame must fail")
	}
	// Unknown type.
	frame, _ := Encode(&Commit{Seq: 1, Commit: cid.SumRaw([]byte("x"))})
	frame[len("#commit")+3] = 'x' // corrupt inside header type string region
	if _, err := Decode(frame); err == nil {
		t.Log("corruption tolerated (may decode differently) — acceptable if body still parses")
	}
}

func TestTypeOfUnknown(t *testing.T) {
	if _, err := TypeOf(struct{}{}); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestTimeRoundTrip(t *testing.T) {
	ts := time.Date(2024, 4, 24, 1, 2, 3, 456000000, time.UTC)
	got, err := ParseTime(FormatTime(ts))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ts) {
		t.Fatalf("%v vs %v", got, ts)
	}
}
