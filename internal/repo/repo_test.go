package repo

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"blueskies/internal/identity"
)

var t0 = time.Date(2024, 4, 24, 0, 0, 0, 0, time.UTC)

func newTestRepo(t *testing.T) (*Repo, *identity.KeyPair) {
	t.Helper()
	kp := identity.DeriveKeyPair("test-repo")
	did := identity.PLCFromGenesis([]byte("test-repo-genesis"))
	return New(did, kp), kp
}

func postValue(text string) map[string]any {
	return map[string]any{
		"$type":     "app.bsky.feed.post",
		"text":      text,
		"createdAt": t0.Format(time.RFC3339),
	}
}

func TestCreateCommitGet(t *testing.T) {
	r, kp := newTestRepo(t)
	uri, c, err := r.Create("app.bsky.feed.post", "3kdgeujwlq32y", postValue("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Defined() {
		t.Fatal("record CID undefined")
	}
	if uri.Collection != "app.bsky.feed.post" {
		t.Fatalf("uri = %v", uri)
	}
	info, err := r.Commit(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Ops) != 1 || info.Ops[0].Action != "create" {
		t.Fatalf("ops = %+v", info.Ops)
	}
	if info.Rev == "" || !info.CID.Defined() {
		t.Fatal("commit info incomplete")
	}
	rec, err := r.Get("app.bsky.feed.post", "3kdgeujwlq32y")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Value["text"] != "hello" {
		t.Fatalf("record = %v", rec.Value)
	}
	head, err := r.HeadCommit()
	if err != nil {
		t.Fatal(err)
	}
	if !head.Verify(kp.Public()) {
		t.Fatal("commit signature must verify")
	}
	if head.Prev != nil {
		t.Fatal("first commit must have nil prev")
	}
}

func TestCommitChain(t *testing.T) {
	r, _ := newTestRepo(t)
	_, _, _ = r.Create("app.bsky.feed.post", "3kaaaaaaaaaa2", postValue("one"))
	info1, err := r.Commit(t0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = r.Create("app.bsky.feed.post", "3kaaaaaaaaaa3", postValue("two"))
	info2, err := r.Commit(t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if info2.Prev == nil || !info2.Prev.Equal(info1.CID) {
		t.Fatal("second commit must link to first")
	}
	if !info1.Rev.Less(info2.Rev) {
		t.Fatalf("revs not increasing: %s then %s", info1.Rev, info2.Rev)
	}
}

func TestCommitNothingStaged(t *testing.T) {
	r, _ := newTestRepo(t)
	if _, err := r.Commit(t0); err != nil {
		t.Fatalf("genesis commit of empty repo should work: %v", err)
	}
	if _, err := r.Commit(t0); err == nil {
		t.Fatal("expected error committing with nothing staged")
	}
}

func TestCreateDuplicateRejected(t *testing.T) {
	r, _ := newTestRepo(t)
	_, _, err := r.Create("c", "k", postValue("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Create("c", "k", postValue("y")); err == nil {
		t.Fatal("duplicate create must fail")
	}
	// Put must succeed as replace.
	if _, _, err := r.Put("c", "k", postValue("y")); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	r, _ := newTestRepo(t)
	_, _, _ = r.Create("app.bsky.feed.like", "3kaaaaaaaaaa2", map[string]any{"$type": "app.bsky.feed.like"})
	if _, err := r.Commit(t0); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("app.bsky.feed.like", "3kaaaaaaaaaa2"); err != nil {
		t.Fatal(err)
	}
	info, err := r.Commit(t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Ops) != 1 || info.Ops[0].Action != "delete" {
		t.Fatalf("ops = %+v", info.Ops)
	}
	if err := r.Delete("app.bsky.feed.like", "3kaaaaaaaaaa2"); err == nil {
		t.Fatal("deleting absent record must fail")
	}
}

func TestUpdateOp(t *testing.T) {
	r, _ := newTestRepo(t)
	_, _, _ = r.Create("c", "k", postValue("v1"))
	_, _ = r.Commit(t0)
	_, _, err := r.Put("c", "k", postValue("v2"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Commit(t0.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Ops) != 1 || info.Ops[0].Action != "update" {
		t.Fatalf("ops = %+v", info.Ops)
	}
}

func TestPathValidation(t *testing.T) {
	r, _ := newTestRepo(t)
	if _, _, err := r.Create("", "k", nil); err == nil {
		t.Fatal("empty collection must fail")
	}
	if _, _, err := r.Create("c", "", nil); err == nil {
		t.Fatal("empty rkey must fail")
	}
	if _, _, err := r.Create("c/d", "k", nil); err == nil {
		t.Fatal("slash in collection must fail")
	}
}

func TestListAndCollections(t *testing.T) {
	r, _ := newTestRepo(t)
	for i := 0; i < 5; i++ {
		_, _, _ = r.Create("app.bsky.feed.post", fmt.Sprintf("3kaaaaaaaaa%02d", i), postValue(fmt.Sprint(i)))
	}
	_, _, _ = r.Create("app.bsky.graph.follow", "3kbbbbbbbbbb2", map[string]any{"subject": "did:plc:x"})
	if _, err := r.Commit(t0); err != nil {
		t.Fatal(err)
	}
	posts, err := r.List("app.bsky.feed.post")
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 5 {
		t.Fatalf("got %d posts", len(posts))
	}
	all, err := r.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("got %d records", len(all))
	}
	colls := r.Collections()
	if len(colls) != 2 || colls[0] != "app.bsky.feed.post" || colls[1] != "app.bsky.graph.follow" {
		t.Fatalf("collections = %v", colls)
	}
}

func TestCARExportLoad(t *testing.T) {
	r, kp := newTestRepo(t)
	for i := 0; i < 20; i++ {
		_, _, _ = r.Create("app.bsky.feed.post", fmt.Sprintf("3kaaaaaaaaa%02d", i), postValue(fmt.Sprint(i)))
	}
	if _, err := r.Commit(t0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.ExportCAR(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCAR(&buf, kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DID() != r.DID() {
		t.Fatalf("did mismatch: %s vs %s", loaded.DID(), r.DID())
	}
	if loaded.Rev() != r.Rev() || !loaded.Head().Equal(r.Head()) {
		t.Fatal("head/rev mismatch after load")
	}
	recs, err := loaded.List("app.bsky.feed.post")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("loaded %d records", len(recs))
	}
	for _, rec := range recs {
		if rec.Value["$type"] != "app.bsky.feed.post" {
			t.Fatalf("record %v lost its type", rec.URI)
		}
	}
}

func TestCARLoadRejectsWrongKey(t *testing.T) {
	r, _ := newTestRepo(t)
	_, _, _ = r.Create("c", "k", postValue("x"))
	_, _ = r.Commit(t0)
	var buf bytes.Buffer
	if err := r.ExportCAR(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := identity.DeriveKeyPair("attacker")
	if _, err := LoadCAR(&buf, wrong.Public()); err == nil {
		t.Fatal("load must fail with wrong verification key")
	}
}

func TestLoadedRepoIsReadOnly(t *testing.T) {
	r, kp := newTestRepo(t)
	_, _, _ = r.Create("c", "k", postValue("x"))
	_, _ = r.Commit(t0)
	var buf bytes.Buffer
	_ = r.ExportCAR(&buf)
	loaded, err := LoadCAR(&buf, kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = loaded.Put("c", "k2", postValue("y"))
	if _, err := loaded.Commit(t0); err == nil {
		t.Fatal("loaded repo must refuse to commit without key")
	}
}

func TestExportBeforeCommit(t *testing.T) {
	r, _ := newTestRepo(t)
	var buf bytes.Buffer
	if err := r.ExportCAR(&buf); err == nil {
		t.Fatal("export of uncommitted repo must fail")
	}
}

func TestCommitBlocksIncludeRecordsAndCommit(t *testing.T) {
	r, _ := newTestRepo(t)
	_, recCID, _ := r.Create("c", "k", postValue("x"))
	info, err := r.Commit(t0)
	if err != nil {
		t.Fatal(err)
	}
	foundRec, foundCommit := false, false
	for _, b := range info.Blocks {
		if b.CID.Equal(recCID) {
			foundRec = true
		}
		if b.CID.Equal(info.CID) {
			foundCommit = true
		}
	}
	if !foundRec || !foundCommit {
		t.Fatalf("commit blocks incomplete: rec=%v commit=%v", foundRec, foundCommit)
	}
}
