// Package repo implements AT Protocol user data repositories: the
// signed, git-like key-value store of a user's public records (posts,
// likes, follows, blocks, …) described in §2 of the paper.
//
// A repository is a set of records keyed "collection/rkey", indexed by
// a Merkle Search Tree whose root is referenced from a signed commit.
// Every mutation produces a new commit with a monotonically increasing
// TID revision. Repositories serialize to CARv1 archives, which is
// what com.atproto.sync.getRepo returns.
package repo

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"blueskies/internal/car"
	"blueskies/internal/cbor"
	"blueskies/internal/cid"
	"blueskies/internal/identity"
	"blueskies/internal/mst"
)

// commitVersion is the atproto repo format version.
const commitVersion = 3

// Commit is the signed repository commit object.
type Commit struct {
	DID     string   `cbor:"did"`
	Version int      `cbor:"version"`
	Data    cid.CID  `cbor:"data"`
	Rev     string   `cbor:"rev"`
	Prev    *cid.CID `cbor:"prev"`
	Sig     []byte   `cbor:"sig,omitempty"`
}

// unsigned returns the commit's canonical bytes without the signature,
// which is what gets signed.
func (c Commit) unsigned() []byte {
	c.Sig = nil
	return cbor.MustMarshal(c)
}

// Verify checks the commit signature against pub.
func (c Commit) Verify(pub []byte) bool {
	return identity.Verify(pub, c.unsigned(), c.Sig)
}

// Record is a decoded repository record.
type Record struct {
	URI   identity.URI
	CID   cid.CID
	Value map[string]any
}

// Collection extracts the "$type"-style collection of the record key.
func (r Record) Collection() string { return r.URI.Collection }

// Op is one record-level operation included in a commit, mirroring the
// firehose ops array.
type Op struct {
	Action string  // create | update | delete
	Path   string  // collection/rkey
	CID    cid.CID // new record CID (undefined for delete)
}

// CommitInfo summarizes one applied commit for event emission.
type CommitInfo struct {
	DID    identity.DID
	Rev    identity.TID
	CID    cid.CID
	Prev   *cid.CID
	Ops    []Op
	Time   time.Time
	Blocks []car.Block // new blocks introduced by this commit
}

// Repo is a single user's mutable repository.
type Repo struct {
	did    identity.DID
	key    *identity.KeyPair
	store  *mst.MemBlockStore
	tree   *mst.Tree
	clock  *identity.TIDClock
	head   cid.CID
	rev    identity.TID
	nextup *mst.Tree // staged tree with uncommitted changes
}

// New creates an empty repository for did, signing with key.
func New(did identity.DID, key *identity.KeyPair) *Repo {
	return &Repo{
		did:   did,
		key:   key,
		store: mst.NewMemBlockStore(),
		tree:  mst.New(),
		clock: identity.NewTIDClock(uint16(len(did)) & 0x3ff),
	}
}

// DID returns the repository owner.
func (r *Repo) DID() identity.DID { return r.did }

// Head returns the current commit CID (undefined before first commit).
func (r *Repo) Head() cid.CID { return r.head }

// Rev returns the current revision TID ("" before first commit).
func (r *Repo) Rev() identity.TID { return r.rev }

// Len reports the number of live records.
func (r *Repo) Len() int { return r.staged().Len() }

func (r *Repo) staged() *mst.Tree {
	if r.nextup != nil {
		return r.nextup
	}
	return r.tree
}

func (r *Repo) stage() *mst.Tree {
	if r.nextup == nil {
		r.nextup = r.tree.Clone()
	}
	return r.nextup
}

func repoPath(collection, rkey string) (string, error) {
	if collection == "" || rkey == "" {
		return "", errors.New("repo: empty collection or rkey")
	}
	if strings.ContainsRune(collection, '/') || strings.ContainsRune(rkey, '/') {
		return "", fmt.Errorf("repo: '/' not allowed in %q/%q", collection, rkey)
	}
	return collection + "/" + rkey, nil
}

// Create stages a new record and returns its URI and CID. The record
// value must be CBOR-encodable (typically a map or tagged struct).
func (r *Repo) Create(collection, rkey string, value any) (identity.URI, cid.CID, error) {
	path, err := repoPath(collection, rkey)
	if err != nil {
		return identity.URI{}, cid.CID{}, err
	}
	if _, exists := r.staged().Get(path); exists {
		return identity.URI{}, cid.CID{}, fmt.Errorf("repo: record %s already exists", path)
	}
	return r.put(path, collection, rkey, value)
}

// Put stages a create-or-replace of a record.
func (r *Repo) Put(collection, rkey string, value any) (identity.URI, cid.CID, error) {
	path, err := repoPath(collection, rkey)
	if err != nil {
		return identity.URI{}, cid.CID{}, err
	}
	return r.put(path, collection, rkey, value)
}

func (r *Repo) put(path, collection, rkey string, value any) (identity.URI, cid.CID, error) {
	data, err := cbor.Marshal(value)
	if err != nil {
		return identity.URI{}, cid.CID{}, fmt.Errorf("repo: encode record: %w", err)
	}
	c := r.store.Put(cid.DagCBOR, data)
	if err := r.stage().Put(path, c); err != nil {
		return identity.URI{}, cid.CID{}, err
	}
	uri := identity.URI{DID: r.did, Collection: collection, RKey: rkey}
	return uri, c, nil
}

// Delete stages removal of a record.
func (r *Repo) Delete(collection, rkey string) error {
	path, err := repoPath(collection, rkey)
	if err != nil {
		return err
	}
	if !r.stage().Delete(path) {
		return fmt.Errorf("repo: record %s not found", path)
	}
	return nil
}

// Get returns a decoded record by collection and rkey.
func (r *Repo) Get(collection, rkey string) (Record, error) {
	path, err := repoPath(collection, rkey)
	if err != nil {
		return Record{}, err
	}
	c, ok := r.staged().Get(path)
	if !ok {
		return Record{}, fmt.Errorf("repo: record %s not found", path)
	}
	return r.loadRecord(collection, rkey, c)
}

func (r *Repo) loadRecord(collection, rkey string, c cid.CID) (Record, error) {
	data, ok := r.store.Get(c)
	if !ok {
		return Record{}, fmt.Errorf("repo: missing block %s", c)
	}
	var value map[string]any
	if err := cbor.Unmarshal(data, &value); err != nil {
		return Record{}, fmt.Errorf("repo: decode record: %w", err)
	}
	return Record{
		URI:   identity.URI{DID: r.did, Collection: collection, RKey: rkey},
		CID:   c,
		Value: value,
	}, nil
}

// List returns all records in a collection ("" for all), in key order.
func (r *Repo) List(collection string) ([]Record, error) {
	var out []Record
	for _, e := range r.staged().Entries() {
		coll, rkey, ok := strings.Cut(e.Key, "/")
		if !ok {
			continue
		}
		if collection != "" && coll != collection {
			continue
		}
		rec, err := r.loadRecord(coll, rkey, e.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Collections lists the distinct collection NSIDs present, sorted.
func (r *Repo) Collections() []string {
	seen := map[string]bool{}
	for _, e := range r.staged().Entries() {
		if coll, _, ok := strings.Cut(e.Key, "/"); ok {
			seen[coll] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Commit applies staged changes as a new signed commit at the given
// timestamp. Committing with no staged changes is an error.
func (r *Repo) Commit(ts time.Time) (CommitInfo, error) {
	if r.key == nil {
		return CommitInfo{}, errors.New("repo: read-only repository (no signing key)")
	}
	if r.nextup == nil && r.head.Defined() {
		return CommitInfo{}, errors.New("repo: nothing staged")
	}
	newTree := r.staged()
	changes := mst.Diff(r.tree, newTree)
	if len(changes) == 0 && r.head.Defined() {
		r.nextup = nil
		return CommitInfo{}, errors.New("repo: nothing staged")
	}

	before := r.store.Len()
	_ = before // retained for clarity; block dedup makes Put idempotent
	root, err := newTree.Build(r.store)
	if err != nil {
		return CommitInfo{}, fmt.Errorf("repo: build mst: %w", err)
	}
	rev := r.clock.Next(ts)
	commit := Commit{
		DID:     string(r.did),
		Version: commitVersion,
		Data:    root,
		Rev:     string(rev),
	}
	if r.head.Defined() {
		prev := r.head
		commit.Prev = &prev
	}
	commit.Sig = r.key.Sign(commit.unsigned())
	commitBytes := cbor.MustMarshal(commit)
	commitCID := r.store.Put(cid.DagCBOR, commitBytes)

	info := CommitInfo{
		DID:  r.did,
		Rev:  rev,
		CID:  commitCID,
		Prev: commit.Prev,
		Time: ts,
	}
	for _, ch := range changes {
		op := Op{Path: ch.Key}
		switch ch.Op {
		case mst.OpCreate:
			op.Action, op.CID = "create", ch.New
		case mst.OpUpdate:
			op.Action, op.CID = "update", ch.New
		case mst.OpDelete:
			op.Action = "delete"
		}
		info.Ops = append(info.Ops, op)
		if ch.New.Defined() {
			if data, ok := r.store.Get(ch.New); ok {
				info.Blocks = append(info.Blocks, car.Block{CID: ch.New, Data: data})
			}
		}
	}
	info.Blocks = append(info.Blocks, car.Block{CID: commitCID, Data: commitBytes})

	r.tree = newTree
	r.nextup = nil
	r.head = commitCID
	r.rev = rev
	return info, nil
}

// HeadCommit returns the decoded current commit.
func (r *Repo) HeadCommit() (Commit, error) {
	if !r.head.Defined() {
		return Commit{}, errors.New("repo: no commits yet")
	}
	data, ok := r.store.Get(r.head)
	if !ok {
		return Commit{}, fmt.Errorf("repo: missing commit block %s", r.head)
	}
	var c Commit
	if err := cbor.Unmarshal(data, &c); err != nil {
		return Commit{}, err
	}
	return c, nil
}

// ExportCAR writes the full repository (commit, MST nodes, records) as
// a CARv1 archive rooted at the head commit.
func (r *Repo) ExportCAR(w io.Writer) error {
	if !r.head.Defined() {
		return errors.New("repo: no commits to export")
	}
	cw, err := car.NewWriter(w, r.head)
	if err != nil {
		return err
	}
	// Deterministic export order: commit first, then reachable blocks
	// in walk order (MST nodes and records).
	visited := map[cid.CID]bool{}
	var emit func(c cid.CID) error
	emit = func(c cid.CID) error {
		if visited[c] {
			return nil
		}
		visited[c] = true
		data, ok := r.store.Get(c)
		if !ok {
			return fmt.Errorf("repo: missing block %s during export", c)
		}
		if err := cw.WriteBlock(car.Block{CID: c, Data: data}); err != nil {
			return err
		}
		for _, link := range cborLinks(data) {
			if err := emit(link); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit(r.head); err != nil {
		return err
	}
	return cw.Flush()
}

// cborLinks extracts all CID links from a DAG-CBOR block, in encounter
// order. Non-CBOR blocks yield none.
func cborLinks(data []byte) []cid.CID {
	v, err := cbor.Decode(data)
	if err != nil {
		return nil
	}
	var out []cid.CID
	var walk func(any)
	walk = func(x any) {
		switch t := x.(type) {
		case cid.CID:
			out = append(out, t)
		case []any:
			for _, e := range t {
				walk(e)
			}
		case map[string]any:
			keys := make([]string, 0, len(t))
			for k := range t {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				walk(t[k])
			}
		}
	}
	walk(v)
	return out
}

// LoadCAR reconstructs a repository from a CARv1 archive, verifying
// the commit signature against pub (skip verification if pub is nil)
// and the block digests (enforced by the CAR reader).
func LoadCAR(rd io.Reader, pub []byte) (*Repo, error) {
	cr, err := car.NewReader(rd)
	if err != nil {
		return nil, err
	}
	if len(cr.Roots()) != 1 {
		return nil, fmt.Errorf("repo: expected 1 root, got %d", len(cr.Roots()))
	}
	root := cr.Roots()[0]
	store := mst.NewMemBlockStore()
	for {
		b, err := cr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		store.Put(b.CID.Codec(), b.Data)
	}
	commitData, ok := store.Get(root)
	if !ok {
		return nil, errors.New("repo: archive missing root commit")
	}
	var commit Commit
	if err := cbor.Unmarshal(commitData, &commit); err != nil {
		return nil, fmt.Errorf("repo: decode commit: %w", err)
	}
	if commit.Version != commitVersion {
		return nil, fmt.Errorf("repo: unsupported commit version %d", commit.Version)
	}
	did, err := identity.ParseDID(commit.DID)
	if err != nil {
		return nil, fmt.Errorf("repo: commit DID: %w", err)
	}
	if pub != nil && !commit.Verify(pub) {
		return nil, errors.New("repo: commit signature invalid")
	}
	rev, err := identity.ParseTID(commit.Rev)
	if err != nil {
		return nil, fmt.Errorf("repo: commit rev: %w", err)
	}
	tree, err := mst.Load(store, commit.Data)
	if err != nil {
		return nil, fmt.Errorf("repo: load mst: %w", err)
	}
	return &Repo{
		did:   did,
		store: store,
		tree:  tree,
		clock: identity.NewTIDClock(0),
		head:  root,
		rev:   rev,
	}, nil
}
