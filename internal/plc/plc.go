// Package plc implements the did:plc method and the PLC directory
// service (plc.directory in the real network, operated by Bluesky
// PBC): an append-only log of signed operations per DID, from which
// the current DID document is derived.
//
// The paper (§5) highlights that nearly all Bluesky identities resolve
// through this single centralized directory; the crawler downloads a
// full snapshot of DID documents from it.
package plc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"blueskies/internal/cbor"
	"blueskies/internal/identity"
)

// Operation is one signed PLC operation. Each operation carries the
// full desired identity state (simplified from the production schema,
// which splits rotation and verification keys).
type Operation struct {
	Type            string `cbor:"type" json:"type"` // plc_operation | plc_tombstone
	VerificationKey string `cbor:"verificationKey,omitempty" json:"verificationKey,omitempty"`
	Handle          string `cbor:"handle,omitempty" json:"handle,omitempty"`
	PDSEndpoint     string `cbor:"pdsEndpoint,omitempty" json:"pdsEndpoint,omitempty"`
	LabelerEndpoint string `cbor:"labelerEndpoint,omitempty" json:"labelerEndpoint,omitempty"`
	Prev            string `cbor:"prev,omitempty" json:"prev,omitempty"` // CID string of previous op
	Sig             []byte `cbor:"sig,omitempty" json:"sig,omitempty"`
}

// Operation types.
const (
	OpTypeOperation = "plc_operation"
	OpTypeTombstone = "plc_tombstone"
)

// unsigned returns the canonical signable bytes.
func (op Operation) unsigned() []byte {
	op.Sig = nil
	return cbor.MustMarshal(op)
}

// Sign signs the operation with key.
func (op *Operation) Sign(key *identity.KeyPair) {
	op.Sig = key.Sign(op.unsigned())
}

// CID returns the operation's content identifier string.
func (op Operation) CID() string {
	return fmt.Sprintf("%s", opCID(op))
}

func opCID(op Operation) string {
	data := cbor.MustMarshal(op)
	return identity.PLCFromGenesis(data).Suffix() // reuse the 24-char digest form
}

// NewGenesis builds and signs a genesis operation, returning the
// derived did:plc identifier.
func NewGenesis(key *identity.KeyPair, handle identity.Handle, pdsEndpoint string) (identity.DID, Operation) {
	op := Operation{
		Type:            OpTypeOperation,
		VerificationKey: key.PublicMultibase(),
		Handle:          string(handle),
		PDSEndpoint:     pdsEndpoint,
	}
	op.Sign(key)
	did := identity.PLCFromGenesis(cbor.MustMarshal(op))
	return did, op
}

// Directory is the in-memory operation log, independent of transport.
type Directory struct {
	mu   sync.RWMutex
	logs map[identity.DID][]Operation
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{logs: make(map[identity.DID][]Operation)}
}

// errors returned by the directory.
var (
	ErrNotFound    = errors.New("plc: DID not registered")
	ErrTombstoned  = errors.New("plc: DID is tombstoned")
	ErrBadSig      = errors.New("plc: operation signature invalid")
	ErrBadPrev     = errors.New("plc: operation prev does not match log head")
	ErrDIDMismatch = errors.New("plc: genesis operation does not derive the DID")
)

// Create registers a DID with its genesis operation.
func (d *Directory) Create(did identity.DID, genesis Operation) error {
	if genesis.Prev != "" {
		return errors.New("plc: genesis operation must have no prev")
	}
	if derived := identity.PLCFromGenesis(cbor.MustMarshal(genesis)); derived != did {
		return ErrDIDMismatch
	}
	if err := verifyOp(genesis, genesis.VerificationKey); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.logs[did]; exists {
		return fmt.Errorf("plc: DID %s already registered", did)
	}
	d.logs[did] = []Operation{genesis}
	return nil
}

// Update appends an operation to an existing log. The operation must
// be signed with the key of the current head and chain to it via Prev.
func (d *Directory) Update(did identity.DID, op Operation) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	log, ok := d.logs[did]
	if !ok {
		return ErrNotFound
	}
	head := log[len(log)-1]
	if head.Type == OpTypeTombstone {
		return ErrTombstoned
	}
	if op.Prev != opCID(head) {
		return ErrBadPrev
	}
	if err := verifyOp(op, head.VerificationKey); err != nil {
		return err
	}
	d.logs[did] = append(log, op)
	return nil
}

func verifyOp(op Operation, keyMultibase string) error {
	pub, err := identity.DecodePublicKeyMultibase(keyMultibase)
	if err != nil {
		return fmt.Errorf("plc: %w", err)
	}
	if !identity.Verify(pub, op.unsigned(), op.Sig) {
		return ErrBadSig
	}
	return nil
}

// Resolve derives the current DID document.
func (d *Directory) Resolve(did identity.DID) (identity.Document, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	log, ok := d.logs[did]
	if !ok {
		return identity.Document{}, ErrNotFound
	}
	head := log[len(log)-1]
	if head.Type == OpTypeTombstone {
		return identity.Document{}, ErrTombstoned
	}
	return documentFromOp(did, head), nil
}

func documentFromOp(did identity.DID, op Operation) identity.Document {
	doc := identity.Document{ID: did}
	if op.Handle != "" {
		doc.SetHandle(identity.Handle(op.Handle))
	}
	if op.VerificationKey != "" {
		doc.VerificationMethod = []identity.VerificationMethod{{
			ID:                 string(did) + "#atproto",
			Type:               "Multikey",
			Controller:         string(did),
			PublicKeyMultibase: op.VerificationKey,
		}}
	}
	if op.PDSEndpoint != "" {
		doc.SetService(identity.ServiceIDPDS, identity.ServiceTypePDS, op.PDSEndpoint)
	}
	if op.LabelerEndpoint != "" {
		doc.SetService(identity.ServiceIDLabeler, identity.ServiceTypeLabel, op.LabelerEndpoint)
	}
	return doc
}

// Log returns the operation log of a DID.
func (d *Directory) Log(did identity.DID) ([]Operation, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	log, ok := d.logs[did]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]Operation(nil), log...), nil
}

// DIDs lists all registered DIDs (including tombstoned), sorted.
func (d *Directory) DIDs() []identity.DID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]identity.DID, 0, len(d.logs))
	for did := range d.logs {
		out = append(out, did)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len reports the number of registered DIDs.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.logs)
}

// Server exposes the directory over HTTP with the plc.directory API
// shape: GET /{did} (document), GET /{did}/log, POST /{did} (submit).
type Server struct {
	dir  *Directory
	srv  *http.Server
	ln   net.Listener
	base string
}

// NewServer starts a directory server on a loopback port.
func NewServer(dir *Directory) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{dir: dir, ln: ln, base: "http://" + ln.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handle)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return s.base }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	wantLog := false
	if rest, ok := strings.CutSuffix(path, "/log"); ok {
		path, wantLog = rest, true
	}
	did, err := identity.ParseDID(path)
	if err != nil {
		http.Error(w, "bad DID", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		if wantLog {
			log, err := s.dir.Log(did)
			if err != nil {
				writeDirErr(w, err)
				return
			}
			writeJSON(w, log)
			return
		}
		doc, err := s.dir.Resolve(did)
		if err != nil {
			writeDirErr(w, err)
			return
		}
		writeJSON(w, doc)
	case http.MethodPost:
		var op Operation
		if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
			http.Error(w, "bad operation", http.StatusBadRequest)
			return
		}
		if op.Prev == "" {
			err = s.dir.Create(did, op)
		} else {
			err = s.dir.Update(did, op)
		}
		if err != nil {
			writeDirErr(w, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func writeDirErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrTombstoned):
		status = http.StatusGone
	case errors.Is(err, ErrBadSig), errors.Is(err, ErrBadPrev), errors.Is(err, ErrDIDMismatch):
		status = http.StatusBadRequest
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Client talks to a directory server.
type Client struct {
	// BaseURL is the directory's root URL.
	BaseURL string
	// HTTPClient overrides the transport.
	HTTPClient *http.Client
}

// NewClient creates a client for the directory at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: &http.Client{Timeout: 10 * time.Second}}
}

// Resolve fetches the DID document for did.
func (c *Client) Resolve(did identity.DID) (identity.Document, error) {
	resp, err := c.HTTPClient.Get(c.BaseURL + "/" + string(did))
	if err != nil {
		return identity.Document{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return identity.Document{}, ErrNotFound
	case http.StatusGone:
		return identity.Document{}, ErrTombstoned
	default:
		return identity.Document{}, fmt.Errorf("plc: resolve status %d", resp.StatusCode)
	}
	var doc identity.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return identity.Document{}, err
	}
	return doc, nil
}

// Submit sends an operation (genesis when op.Prev is empty).
func (c *Client) Submit(did identity.DID, op Operation) error {
	body, err := json.Marshal(op)
	if err != nil {
		return err
	}
	resp, err := c.HTTPClient.Post(c.BaseURL+"/"+string(did), "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("plc: submit status %d", resp.StatusCode)
	}
	return nil
}
