package plc

import (
	"errors"
	"testing"

	"blueskies/internal/identity"
)

func newAccount(t *testing.T, label string) (identity.DID, *identity.KeyPair, Operation) {
	t.Helper()
	kp := identity.DeriveKeyPair(label)
	did, genesis := NewGenesis(kp, identity.Handle(label+".bsky.social"), "http://pds.example")
	return did, kp, genesis
}

func TestCreateAndResolve(t *testing.T) {
	dir := NewDirectory()
	did, _, genesis := newAccount(t, "alice")
	if err := dir.Create(did, genesis); err != nil {
		t.Fatal(err)
	}
	doc, err := dir.Resolve(did)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != did {
		t.Fatalf("doc.ID = %s", doc.ID)
	}
	if doc.Handle() != "alice.bsky.social" {
		t.Fatalf("handle = %s", doc.Handle())
	}
	if doc.PDSEndpoint() != "http://pds.example" {
		t.Fatalf("pds = %s", doc.PDSEndpoint())
	}
	if _, err := doc.SigningKey(); err != nil {
		t.Fatalf("signing key: %v", err)
	}
}

func TestCreateRejectsWrongDID(t *testing.T) {
	dir := NewDirectory()
	_, _, genesis := newAccount(t, "alice")
	other := identity.PLCFromGenesis([]byte("not the genesis"))
	if err := dir.Create(other, genesis); !errors.Is(err, ErrDIDMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateRejectsBadSignature(t *testing.T) {
	dir := NewDirectory()
	did, _, genesis := newAccount(t, "alice")
	genesis.Sig[0] ^= 0xff
	// Flipping the signature changes the derived DID too, so recompute
	// the mismatch path first: use original DID and expect bad sig or
	// mismatch.
	err := dir.Create(did, genesis)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestCreateDuplicate(t *testing.T) {
	dir := NewDirectory()
	did, _, genesis := newAccount(t, "alice")
	if err := dir.Create(did, genesis); err != nil {
		t.Fatal(err)
	}
	if err := dir.Create(did, genesis); err == nil {
		t.Fatal("duplicate create must fail")
	}
}

func TestUpdateHandleAndEndpoint(t *testing.T) {
	dir := NewDirectory()
	did, kp, genesis := newAccount(t, "alice")
	if err := dir.Create(did, genesis); err != nil {
		t.Fatal(err)
	}
	up := Operation{
		Type:            OpTypeOperation,
		VerificationKey: kp.PublicMultibase(),
		Handle:          "alice.example.com",
		PDSEndpoint:     "http://newpds.example",
		Prev:            opCID(genesis),
	}
	up.Sign(kp)
	if err := dir.Update(did, up); err != nil {
		t.Fatal(err)
	}
	doc, err := dir.Resolve(did)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Handle() != "alice.example.com" || doc.PDSEndpoint() != "http://newpds.example" {
		t.Fatalf("doc = %+v", doc)
	}
	log, err := dir.Log(did)
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("log length = %d", len(log))
	}
}

func TestUpdateRejectsWrongPrev(t *testing.T) {
	dir := NewDirectory()
	did, kp, genesis := newAccount(t, "alice")
	_ = dir.Create(did, genesis)
	up := Operation{Type: OpTypeOperation, VerificationKey: kp.PublicMultibase(), Prev: "wrongcid"}
	up.Sign(kp)
	if err := dir.Update(did, up); !errors.Is(err, ErrBadPrev) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateRejectsWrongKey(t *testing.T) {
	dir := NewDirectory()
	did, _, genesis := newAccount(t, "alice")
	_ = dir.Create(did, genesis)
	attacker := identity.DeriveKeyPair("mallory")
	up := Operation{
		Type:            OpTypeOperation,
		VerificationKey: attacker.PublicMultibase(),
		Handle:          "stolen.example.com",
		Prev:            opCID(genesis),
	}
	up.Sign(attacker) // signed by attacker, but head key is alice's
	if err := dir.Update(did, up); !errors.Is(err, ErrBadSig) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeyRotation(t *testing.T) {
	dir := NewDirectory()
	did, kp, genesis := newAccount(t, "alice")
	_ = dir.Create(did, genesis)
	newKey := identity.DeriveKeyPair("alice-rotated")
	rotate := Operation{
		Type:            OpTypeOperation,
		VerificationKey: newKey.PublicMultibase(),
		Handle:          "alice.bsky.social",
		PDSEndpoint:     "http://pds.example",
		Prev:            opCID(genesis),
	}
	rotate.Sign(kp) // old key authorizes the rotation
	if err := dir.Update(did, rotate); err != nil {
		t.Fatal(err)
	}
	// Next update must be signed by the NEW key.
	next := Operation{
		Type:            OpTypeOperation,
		VerificationKey: newKey.PublicMultibase(),
		Handle:          "alice2.bsky.social",
		Prev:            opCID(rotate),
	}
	next.Sign(kp) // old key: must fail
	if err := dir.Update(did, next); !errors.Is(err, ErrBadSig) {
		t.Fatalf("old key accepted after rotation: %v", err)
	}
	next.Sign(newKey)
	if err := dir.Update(did, next); err != nil {
		t.Fatal(err)
	}
}

func TestTombstone(t *testing.T) {
	dir := NewDirectory()
	did, kp, genesis := newAccount(t, "alice")
	_ = dir.Create(did, genesis)
	tomb := Operation{Type: OpTypeTombstone, Prev: opCID(genesis)}
	tomb.Sign(kp)
	if err := dir.Update(did, tomb); err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Resolve(did); !errors.Is(err, ErrTombstoned) {
		t.Fatalf("err = %v", err)
	}
	// No further updates allowed.
	up := Operation{Type: OpTypeOperation, VerificationKey: kp.PublicMultibase(), Prev: opCID(tomb)}
	up.Sign(kp)
	if err := dir.Update(did, up); !errors.Is(err, ErrTombstoned) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	dir := NewDirectory()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(srv.URL())

	did, kp, genesis := newAccount(t, "bob")
	if err := client.Submit(did, genesis); err != nil {
		t.Fatal(err)
	}
	doc, err := client.Resolve(did)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Handle() != "bob.bsky.social" {
		t.Fatalf("handle = %s", doc.Handle())
	}

	up := Operation{
		Type:            OpTypeOperation,
		VerificationKey: kp.PublicMultibase(),
		Handle:          "bob.example.com",
		PDSEndpoint:     "http://pds.example",
		Prev:            opCID(genesis),
	}
	up.Sign(kp)
	if err := client.Submit(did, up); err != nil {
		t.Fatal(err)
	}
	doc, err = client.Resolve(did)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Handle() != "bob.example.com" {
		t.Fatalf("handle after update = %s", doc.Handle())
	}

	if _, err := client.Resolve("did:plc:aaaaaaaaaaaaaaaaaaaaaaaa"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDIDsListing(t *testing.T) {
	dir := NewDirectory()
	for _, name := range []string{"a", "b", "c"} {
		did, _, genesis := newAccount(t, name)
		if err := dir.Create(did, genesis); err != nil {
			t.Fatal(err)
		}
	}
	if dir.Len() != 3 || len(dir.DIDs()) != 3 {
		t.Fatalf("len = %d", dir.Len())
	}
}
