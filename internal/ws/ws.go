// Package ws is a minimal RFC 6455 WebSocket implementation covering
// what the AT Protocol event streams need: HTTP/1.1 upgrade handshake,
// binary/text data frames with client-side masking, fragmentation on
// receive, and ping/pong/close control frames.
//
// The real Bluesky Firehose (com.atproto.sync.subscribeRepos) and
// Labeler streams (com.atproto.label.subscribeLabels) are WebSocket
// endpoints; this package provides the same transport using only the
// standard library.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Opcode identifies a WebSocket frame type.
type Opcode byte

// Frame opcodes defined by RFC 6455 §5.2.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xa
)

// magicGUID is the fixed GUID of the Sec-WebSocket-Accept computation.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// ErrClosed is returned after the connection has been closed.
var ErrClosed = errors.New("ws: connection closed")

// maxFrameSize bounds a single message to protect against hostile
// length headers.
const maxFrameSize = 64 << 20

// Conn is a WebSocket connection. Reads and writes may each be used by
// one goroutine at a time; reads and writes are independently locked.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client connections mask outgoing frames

	wmu    sync.Mutex
	closed bool
}

// AcceptKey computes the Sec-WebSocket-Accept value for a request key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade performs the server side of the WebSocket handshake on an
// http.Handler request and hijacks the underlying TCP connection.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: GET required", http.StatusMethodNotAllowed)
		return nil, errors.New("ws: method not GET")
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: upgrade required", http.StatusBadRequest)
		return nil, errors.New("ws: missing upgrade headers")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing key", http.StatusBadRequest)
		return nil, errors.New("ws: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: hijack unsupported", http.StatusInternalServerError)
		return nil, errors.New("ws: response writer cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, err
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return &Conn{conn: conn, br: rw.Reader, client: false}, nil
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial connects to a ws:// URL and performs the client handshake.
func Dial(rawURL string, timeout time.Duration) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: parse url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("ws: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, err
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s", resp.Status)
	}
	if resp.Header.Get("Sec-WebSocket-Accept") != AcceptKey(key) {
		conn.Close()
		return nil, errors.New("ws: bad Sec-WebSocket-Accept")
	}
	return &Conn{conn: conn, br: br, client: true}, nil
}

// ReadMessage reads the next complete data message, transparently
// answering pings and handling fragmentation. It returns ErrClosed
// after a close frame.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	var msgOp Opcode
	var msg []byte
	for {
		fin, op, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			if err := c.writeFrame(OpPong, payload); err != nil {
				return 0, nil, err
			}
			continue
		case OpPong:
			continue
		case OpClose:
			_ = c.writeFrame(OpClose, payload)
			c.conn.Close()
			return 0, nil, ErrClosed
		case OpText, OpBinary:
			if msg != nil {
				return 0, nil, errors.New("ws: new data frame during fragmented message")
			}
			msgOp = op
			msg = payload
		case OpContinuation:
			if msg == nil {
				return 0, nil, errors.New("ws: continuation without initial frame")
			}
			if len(msg)+len(payload) > maxFrameSize {
				return 0, nil, errors.New("ws: fragmented message too large")
			}
			msg = append(msg, payload...)
		default:
			return 0, nil, fmt.Errorf("ws: unexpected opcode %#x", op)
		}
		if fin {
			return msgOp, msg, nil
		}
	}
}

func (c *Conn) readFrame() (fin bool, op Opcode, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, errors.New("ws: reserved bits set")
	}
	op = Opcode(hdr[0] & 0x0f)
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7f)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(ext[0])<<8 | uint64(ext[1])
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		for _, b := range ext {
			length = length<<8 | uint64(b)
		}
	}
	if length > maxFrameSize {
		return false, 0, nil, fmt.Errorf("ws: frame of %d bytes exceeds limit", length)
	}
	var maskKey [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, maskKey[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= maskKey[i%4]
		}
	}
	return fin, op, payload, nil
}

// WriteMessage writes one unfragmented data message.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	if op != OpText && op != OpBinary {
		return fmt.Errorf("ws: WriteMessage with control opcode %#x", op)
	}
	return c.writeFrame(op, payload)
}

// Ping sends a ping control frame.
func (c *Conn) Ping(payload []byte) error { return c.writeFrame(OpPing, payload) }

func (c *Conn) writeFrame(op Opcode, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	var hdr []byte
	b0 := byte(0x80) | byte(op)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch {
	case len(payload) < 126:
		hdr = []byte{b0, maskBit | byte(len(payload))}
	case len(payload) <= 0xffff:
		hdr = []byte{b0, maskBit | 126, byte(len(payload) >> 8), byte(len(payload))}
	default:
		hdr = make([]byte, 10)
		hdr[0], hdr[1] = b0, maskBit|127
		n := uint64(len(payload))
		for i := 0; i < 8; i++ {
			hdr[9-i] = byte(n >> (8 * i))
		}
	}
	if _, err := c.conn.Write(hdr); err != nil {
		return err
	}
	if c.client {
		var key [4]byte
		if _, err := rand.Read(key[:]); err != nil {
			return err
		}
		if _, err := c.conn.Write(key[:]); err != nil {
			return err
		}
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ key[i%4]
		}
		_, err := c.conn.Write(masked)
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// Close sends a close frame and closes the transport.
func (c *Conn) Close() error {
	err := c.writeFrame(OpClose, nil)
	c.wmu.Lock()
	c.closed = true
	c.wmu.Unlock()
	cerr := c.conn.Close()
	if err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	return cerr
}

// SetReadDeadline sets the read deadline on the underlying transport.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }
