package ws

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// echoServer upgrades and echoes every data message back.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			op, msg, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

func TestEchoRoundTrip(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, msg := range [][]byte{
		[]byte("hello"),
		[]byte(""),
		bytes.Repeat([]byte("x"), 125),   // 7-bit length boundary
		bytes.Repeat([]byte("y"), 126),   // 16-bit length
		bytes.Repeat([]byte("z"), 70000), // 64-bit length
	} {
		if err := conn.WriteMessage(OpBinary, msg); err != nil {
			t.Fatal(err)
		}
		op, got, err := conn.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != OpBinary || !bytes.Equal(got, msg) {
			t.Fatalf("echo mismatch for %d bytes", len(msg))
		}
	}
}

func TestTextMessage(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteMessage(OpText, []byte("text payload")); err != nil {
		t.Fatal(err)
	}
	op, got, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(got) != "text payload" {
		t.Fatalf("got op=%v %q", op, got)
	}
}

func TestPingHandledTransparently(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server's ReadMessage should answer the ping with a pong and
	// then echo the data message; the client's ReadMessage should skip
	// the pong.
	if err := conn.Ping([]byte("beat")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(OpBinary, []byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	_, got, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "after-ping" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(OpBinary, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestServerInitiatedMessages(t *testing.T) {
	const n = 50
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; i < n; i++ {
			if err := conn.WriteMessage(OpBinary, []byte{byte(i)}); err != nil {
				return
			}
		}
	}))
	defer srv.Close()
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < n; i++ {
		_, msg, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if len(msg) != 1 || msg[0] != byte(i) {
			t.Fatalf("message %d: got %v", i, msg)
		}
	}
}

func TestConcurrentWriters(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := conn.WriteMessage(OpBinary, []byte("concurrent")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_, msg, err := conn.ReadMessage()
			if err != nil {
				t.Error(err)
				return
			}
			if string(msg) != "concurrent" {
				t.Errorf("corrupted frame: %q", msg)
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestUpgradeRejectsPlainRequest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("upgrade of plain request must fail")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusSwitchingProtocols {
		t.Fatal("plain GET must not switch protocols")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://example.com", time.Second); err == nil {
		t.Fatal("non-ws scheme must fail")
	}
	if _, err := Dial("ws://127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("refused connection must fail")
	}
}

func TestAcceptKeyKnownVector(t *testing.T) {
	// RFC 6455 §1.3 example.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("AcceptKey = %q, want %q", got, want)
	}
}

func TestQuickEcho(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(wsURL(srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f := func(msg []byte) bool {
		if err := conn.WriteMessage(OpBinary, msg); err != nil {
			return false
		}
		_, got, err := conn.ReadMessage()
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
