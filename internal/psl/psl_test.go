package psl

import "testing"

func TestPublicSuffixBasic(t *testing.T) {
	l := Default()
	cases := []struct {
		domain   string
		suffix   string
		explicit bool
	}{
		{"alice.bsky.social", "social", true},
		{"example.com", "com", true},
		{"www.example.co.uk", "co.uk", true},
		{"sub.deep.example.com.br", "com.br", true},
		{"something.unknowntld", "unknowntld", false},
		{"tanaka.example.co.jp", "co.jp", true},
	}
	for _, tc := range cases {
		suffix, explicit := l.PublicSuffix(tc.domain)
		if suffix != tc.suffix || explicit != tc.explicit {
			t.Errorf("PublicSuffix(%q) = %q/%v, want %q/%v",
				tc.domain, suffix, explicit, tc.suffix, tc.explicit)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	l := Default()
	cases := []struct{ domain, want string }{
		{"alice.bsky.social", "bsky.social"},
		{"bsky.social", "bsky.social"},
		{"social", ""}, // a bare public suffix has no registrant
		{"a.b.c.example.com", "example.com"},
		{"www.example.co.uk", "example.co.uk"},
		{"example.co.uk", "example.co.uk"},
		{"co.uk", ""},
		{"user.swifties.social", "swifties.social"},
		{"x.github.io", "github.io"}, // github.io deliberately not a suffix here (paper counts it as a registered name)
	}
	for _, tc := range cases {
		if got := l.RegisteredDomain(tc.domain); got != tc.want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", tc.domain, got, tc.want)
		}
	}
}

func TestWildcardAndExceptionRules(t *testing.T) {
	l := Default()
	// "*.ck" makes "foo.ck" a public suffix → "bar.foo.ck" registers.
	if got := l.RegisteredDomain("bar.foo.ck"); got != "bar.foo.ck" {
		t.Errorf("wildcard: RegisteredDomain(bar.foo.ck) = %q", got)
	}
	if got := l.RegisteredDomain("foo.ck"); got != "" {
		t.Errorf("wildcard: RegisteredDomain(foo.ck) = %q", got)
	}
	// "!www.ck" exempts www.ck: its suffix is "ck", so www.ck registers.
	if got := l.RegisteredDomain("www.ck"); got != "www.ck" {
		t.Errorf("exception: RegisteredDomain(www.ck) = %q", got)
	}
	if got := l.RegisteredDomain("sub.www.ck"); got != "www.ck" {
		t.Errorf("exception: RegisteredDomain(sub.www.ck) = %q", got)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	l, err := Parse("// comment\n\ncom\n  org  \n")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := l.PublicSuffix("a.com"); s != "com" || !ok {
		t.Fatalf("suffix = %q %v", s, ok)
	}
	if s, ok := l.PublicSuffix("a.org"); s != "org" || !ok {
		t.Fatalf("suffix = %q %v", s, ok)
	}
}

func TestParseRejectsInteriorWildcard(t *testing.T) {
	if _, err := Parse("foo.*.bar"); err == nil {
		t.Fatal("expected error for interior wildcard")
	}
}

func TestCaseAndTrailingDot(t *testing.T) {
	l := Default()
	if got := l.RegisteredDomain("WWW.Example.COM."); got != "example.com" {
		t.Fatalf("got %q", got)
	}
}
