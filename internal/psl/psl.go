// Package psl implements Public Suffix List rule parsing and
// registered-domain (eTLD+1) extraction, as used by the paper (§5) to
// group FQDN handles by their effective second-level domain for the
// handle-concentration analysis (Figure 3).
//
// The algorithm follows publicsuffix.org: the longest matching rule
// wins, exception rules ("!") beat wildcard rules ("*."), and an
// unmatched name falls back to the implicit "*" rule (its last label
// is the public suffix).
package psl

import (
	"bufio"
	"fmt"
	"strings"
)

// List is a parsed set of public-suffix rules.
type List struct {
	rules      map[string]bool // normal rules
	wildcards  map[string]bool // "*.<base>" rules keyed by base
	exceptions map[string]bool // "!<name>" rules
}

// Parse reads rules in the publicsuffix.org file format: one rule per
// line, comments starting with "//", blank lines ignored.
func Parse(text string) (*List, error) {
	l := &List{
		rules:      make(map[string]bool),
		wildcards:  make(map[string]bool),
		exceptions: make(map[string]bool),
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// Rules are the first whitespace-separated token.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		line = strings.ToLower(line)
		switch {
		case strings.HasPrefix(line, "!"):
			l.exceptions[line[1:]] = true
		case strings.HasPrefix(line, "*."):
			l.wildcards[line[2:]] = true
		default:
			if strings.Contains(line, "*") {
				return nil, fmt.Errorf("psl: unsupported interior wildcard rule %q", line)
			}
			l.rules[line] = true
		}
	}
	return l, sc.Err()
}

// MustParse is Parse but panics on error; for embedded rule sets.
func MustParse(text string) *List {
	l, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return l
}

// PublicSuffix returns the public suffix of domain and whether it was
// matched by an explicit rule (as opposed to the implicit "*" rule).
func (l *List) PublicSuffix(domain string) (string, bool) {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	labels := strings.Split(domain, ".")
	// Find the longest explicit match.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if l.exceptions[candidate] {
			// Exception: the suffix is one label shorter.
			return strings.Join(labels[i+1:], "."), true
		}
		if l.rules[candidate] {
			return candidate, true
		}
		// "*.base" matches "<anything>.base" — candidate's tail.
		if i+1 <= len(labels)-1 {
			base := strings.Join(labels[i+1:], ".")
			if l.wildcards[base] && !l.exceptions[candidate] {
				return candidate, true
			}
		}
	}
	// Implicit "*" rule: last label.
	return labels[len(labels)-1], false
}

// RegisteredDomain returns the eTLD+1 of domain: the public suffix
// plus one label. It returns "" when domain is itself a public suffix
// or has no extra label.
func (l *List) RegisteredDomain(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	suffix, _ := l.PublicSuffix(domain)
	if domain == suffix {
		return ""
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	if rest == domain {
		return ""
	}
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix
}

// Default returns the rule set used by the synthetic world: the
// generic TLDs, ccTLDs, and multi-label suffixes that appear in the
// paper's handle population. (The full Mozilla PSL is thousands of
// rules; only those the simulation can produce are embedded.)
func Default() *List {
	return MustParse(defaultRules)
}

const defaultRules = `
// Generic TLDs
com
net
org
edu
gov
app
dev
io
me
social
cool
online
site
host
cloud
xyz
art
blog
page
work
team
news
// ccTLDs with flat registration
de
fr
nl
es
it
ca
ch
at
be
se
no
us
// ccTLDs with second-level structure
jp
co.jp
ne.jp
or.jp
ac.jp
uk
co.uk
org.uk
ac.uk
gov.uk
br
com.br
net.br
org.br
kr
co.kr
or.kr
au
com.au
org.au
nz
co.nz
// Wildcard example used in tests (ck-style)
*.ck
!www.ck
`
