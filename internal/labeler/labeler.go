// Package labeler implements Labelers: services that attach short
// textual labels to network objects (posts, accounts, profile media),
// publish them on an open stream, and can rescind them by negation
// (§2 and §6 of the paper).
//
// A labeler is itself a regular account: it declares its label values
// in an app.bsky.labeler.service record in its repository and lists a
// labeler service endpoint in its DID document. The endpoint serves
// com.atproto.label.subscribeLabels (full-history backfill — the
// paper's crawler consumes every stream from sequence zero) and
// com.atproto.label.queryLabels.
package labeler

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/pds"
	"blueskies/internal/xrpc"
)

// Hardcoded label values with special behaviour (§6.2). The "!" values
// are valid only from the official Bluesky labeler; porn/sexual/
// graphic-media gate under-18 access regardless of source.
const (
	LabelTakedown = "!takedown"
	LabelHide     = "!hide"
	LabelWarn     = "!warn"
	LabelPorn     = "porn"
	LabelSexual   = "sexual"
	LabelGraphic  = "graphic-media"
)

// ReservedLabel reports whether val is a reserved ("!…") value.
func ReservedLabel(val string) bool { return strings.HasPrefix(val, "!") }

// AdultContentLabel reports whether val has hardcoded age-gating.
func AdultContentLabel(val string) bool {
	return val == LabelPorn || val == LabelSexual || val == LabelGraphic
}

// Service is one labeler.
type Service struct {
	did    identity.DID
	values []string
	clock  func() time.Time

	mu     sync.RWMutex
	labels []events.Label
	// active tracks current (uri,val) applications for negation
	// bookkeeping.
	active map[string]bool

	seq  *events.Sequencer
	mux  *xrpc.Mux
	http *http.Server
	base string
}

// Config configures a labeler service.
type Config struct {
	// DID is the labeler's account DID.
	DID identity.DID
	// Values declares the label values the service emits.
	Values []string
	// Clock supplies timestamps; time.Now if nil.
	Clock func() time.Time
}

// New creates a labeler service.
func New(cfg Config) *Service {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Service{
		did:    cfg.DID,
		values: append([]string(nil), cfg.Values...),
		clock:  clock,
		active: make(map[string]bool),
		seq:    events.NewSequencer(0, 0), // full history, as the paper's crawl relies on
	}
	s.seq.SetClock(clock)
	s.mux = xrpc.NewMux()
	s.register()
	return s
}

// DID returns the labeler's identity.
func (s *Service) DID() identity.DID { return s.did }

// Values returns the declared label values.
func (s *Service) Values() []string { return append([]string(nil), s.values...) }

// Start begins serving the label stream on a loopback port.
func (s *Service) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.base = "http://" + ln.Addr().String()
	s.http = &http.Server{Handler: s.mux}
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// URL returns the service endpoint ("" before Start).
func (s *Service) URL() string { return s.base }

// Close stops the service.
func (s *Service) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

func key(uri, val string) string { return uri + "\x00" + val }

// declared reports whether the service declared val.
func (s *Service) declared(val string) bool {
	for _, v := range s.values {
		if v == val {
			return true
		}
	}
	return false
}

// Apply attaches val to the object at uri (an at:// URI or a bare DID
// for account-level labels). Undeclared values are rejected: labelers
// must provide descriptive metadata for every value they emit (§6.2).
func (s *Service) Apply(uri, val string) (events.Label, error) {
	return s.ApplyAt(uri, val, s.clock())
}

// ApplyAt is Apply with an explicit timestamp (virtual-time worlds).
func (s *Service) ApplyAt(uri, val string, at time.Time) (events.Label, error) {
	if !s.declared(val) {
		return events.Label{}, fmt.Errorf("labeler: value %q not declared by %s", val, s.did)
	}
	label := events.Label{Src: string(s.did), URI: uri, Val: val, CTS: events.FormatTime(at)}
	s.emit(label)
	return label, nil
}

// Negate rescinds a previously applied label by publishing the same
// (uri,val) with the negation mark.
func (s *Service) Negate(uri, val string) (events.Label, error) {
	return s.NegateAt(uri, val, s.clock())
}

// NegateAt is Negate with an explicit timestamp.
func (s *Service) NegateAt(uri, val string, at time.Time) (events.Label, error) {
	s.mu.RLock()
	applied := s.active[key(uri, val)]
	s.mu.RUnlock()
	if !applied {
		return events.Label{}, fmt.Errorf("labeler: %q not currently applied to %s", val, uri)
	}
	label := events.Label{Src: string(s.did), URI: uri, Val: val, Neg: true, CTS: events.FormatTime(at)}
	s.emit(label)
	return label, nil
}

func (s *Service) emit(label events.Label) {
	s.mu.Lock()
	s.labels = append(s.labels, label)
	if label.Neg {
		delete(s.active, key(label.URI, label.Val))
	} else {
		s.active[key(label.URI, label.Val)] = true
	}
	s.mu.Unlock()
	_, _ = s.seq.Emit(func(seq int64) any {
		return &events.Labels{Seq: seq, Labels: []events.Label{label}}
	})
}

// All returns every label ever emitted (including negations).
func (s *Service) All() []events.Label {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]events.Label(nil), s.labels...)
}

// ActiveOn returns the currently applied values on uri.
func (s *Service) ActiveOn(uri string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.active {
		parts := strings.SplitN(k, "\x00", 2)
		if parts[0] == uri {
			out = append(out, parts[1])
		}
	}
	return out
}

func (s *Service) register() {
	s.mux.Stream("com.atproto.label.subscribeLabels", func(w http.ResponseWriter, r *http.Request) {
		pds.ServeStream(s.seq, w, r)
	})
	s.mux.Query("com.atproto.label.queryLabels", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		uriPatterns := params["uriPatterns"]
		s.mu.RLock()
		defer s.mu.RUnlock()
		var out []events.Label
		for _, l := range s.labels {
			if len(uriPatterns) == 0 || matchAny(l.URI, uriPatterns) {
				out = append(out, l)
			}
		}
		return map[string]any{"labels": out}, nil
	})
}

func matchAny(uri string, patterns []string) bool {
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "*"); ok {
			if strings.HasPrefix(uri, base) {
				return true
			}
		} else if uri == p {
			return true
		}
	}
	return false
}

// Visibility is a user's configured reaction to a label (§2, User
// Preferences): ignore, warn, or hide.
type Visibility string

// Reactions a user can configure per label value.
const (
	Ignore Visibility = "ignore"
	Warn   Visibility = "warn"
	Hide   Visibility = "hide"
)

// Preferences is a user's private moderation policy: which labelers
// they subscribe to and how to react to each label value.
type Preferences struct {
	// Subscriptions maps labeler DIDs the user trusts.
	Subscriptions map[string]bool
	// Reactions maps label value → visibility; unlisted values are
	// ignored.
	Reactions map[string]Visibility
	// Adult indicates an 18+ account; when false, adult-content
	// labels always hide (hardcoded behaviour).
	Adult bool
}

// DefaultPreferences subscribes only to the official labeler with
// warn-on-NSFW defaults.
func DefaultPreferences(officialDID identity.DID) Preferences {
	return Preferences{
		Subscriptions: map[string]bool{string(officialDID): true},
		Reactions: map[string]Visibility{
			LabelPorn:    Hide,
			LabelSexual:  Warn,
			LabelGraphic: Warn,
		},
	}
}

// Decide folds a set of labels on one object into the strictest
// resulting visibility. Reserved labels from the official labeler are
// hardcoded: !takedown and !hide always hide, !warn always warns.
// Unsubscribing from the official labeler is not possible (§6.2), so
// officialDID labels are always considered.
func (p Preferences) Decide(labels []events.Label, officialDID identity.DID) Visibility {
	result := Ignore
	upgrade := func(v Visibility) {
		switch {
		case v == Hide:
			result = Hide
		case v == Warn && result == Ignore:
			result = Warn
		}
	}
	for _, l := range labels {
		if l.Neg {
			continue
		}
		official := l.Src == string(officialDID)
		if !official && !p.Subscriptions[l.Src] {
			continue
		}
		if ReservedLabel(l.Val) {
			if !official {
				continue // reserved values are valid only from the official labeler
			}
			switch l.Val {
			case LabelTakedown, LabelHide:
				upgrade(Hide)
			case LabelWarn:
				upgrade(Warn)
			}
			continue
		}
		if AdultContentLabel(l.Val) && !p.Adult {
			upgrade(Hide) // under-18 hardcoded gate
			continue
		}
		if v, ok := p.Reactions[l.Val]; ok {
			upgrade(v)
		}
	}
	return result
}
