package labeler

import (
	"context"
	"net/url"
	"sort"
	"testing"
	"time"

	"blueskies/internal/events"
	"blueskies/internal/identity"
	"blueskies/internal/xrpc"
)

var ts = time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)

func newService(t *testing.T, values ...string) *Service {
	t.Helper()
	if values == nil {
		values = []string{"spam", "porn", "no-alt-text"}
	}
	did := identity.PLCFromGenesis([]byte("labeler-" + values[0]))
	return New(Config{DID: did, Values: values, Clock: func() time.Time { return ts }})
}

const postURI = "at://did:plc:abcdefghijklmnopqrstuvwx/app.bsky.feed.post/3kaaaaaaaaaa2"

func TestApplyAndActive(t *testing.T) {
	s := newService(t)
	l, err := s.Apply(postURI, "spam")
	if err != nil {
		t.Fatal(err)
	}
	if l.Src != string(s.DID()) || l.Neg {
		t.Fatalf("label = %+v", l)
	}
	active := s.ActiveOn(postURI)
	if len(active) != 1 || active[0] != "spam" {
		t.Fatalf("active = %v", active)
	}
}

func TestUndeclaredValueRejected(t *testing.T) {
	s := newService(t)
	if _, err := s.Apply(postURI, "undeclared-label"); err == nil {
		t.Fatal("undeclared value must be rejected")
	}
}

func TestNegation(t *testing.T) {
	s := newService(t)
	if _, err := s.Apply(postURI, "spam"); err != nil {
		t.Fatal(err)
	}
	neg, err := s.Negate(postURI, "spam")
	if err != nil {
		t.Fatal(err)
	}
	if !neg.Neg {
		t.Fatal("negation must carry the neg mark")
	}
	if got := s.ActiveOn(postURI); len(got) != 0 {
		t.Fatalf("active after negation = %v", got)
	}
	// History keeps both events (the paper counts 23,394 rescinded
	// labels — they stay in the stream).
	if len(s.All()) != 2 {
		t.Fatalf("history = %d entries", len(s.All()))
	}
	// Negating an un-applied label fails.
	if _, err := s.Negate(postURI, "spam"); err == nil {
		t.Fatal("double negation must fail")
	}
}

func TestAccountLevelLabels(t *testing.T) {
	s := newService(t)
	did := "did:plc:abcdefghijklmnopqrstuvwx"
	if _, err := s.Apply(did, "spam"); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveOn(did); len(got) != 1 {
		t.Fatalf("active = %v", got)
	}
}

func TestSubscribeLabelsFullBackfill(t *testing.T) {
	s := newService(t)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Emit labels BEFORE subscribing: the stream must backfill all
	// history (the paper collects labels emitted before its
	// collection period).
	_, _ = s.Apply(postURI, "spam")
	_, _ = s.Apply(postURI, "porn")
	_, _ = s.Negate(postURI, "spam")

	sub, err := events.Subscribe(s.URL(), "com.atproto.label.subscribeLabels", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var got []events.Label
	for i := 0; i < 3; i++ {
		ev, err := sub.NextTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		frame, ok := ev.(*events.Labels)
		if !ok {
			t.Fatalf("event = %#v", ev)
		}
		got = append(got, frame.Labels...)
	}
	if len(got) != 3 {
		t.Fatalf("got %d labels", len(got))
	}
	if !got[2].Neg {
		t.Fatal("third label must be the negation")
	}
}

func TestQueryLabels(t *testing.T) {
	s := newService(t)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, _ = s.Apply(postURI, "spam")
	_, _ = s.Apply("did:plc:other123other123other123", "porn")

	client := xrpc.NewClient(s.URL())
	var out struct {
		Labels []events.Label `json:"labels"`
	}
	err := client.Query(context.Background(), "com.atproto.label.queryLabels",
		url.Values{"uriPatterns": {postURI}}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Labels) != 1 || out.Labels[0].Val != "spam" {
		t.Fatalf("labels = %+v", out.Labels)
	}
	// Prefix pattern.
	out.Labels = nil
	err = client.Query(context.Background(), "com.atproto.label.queryLabels",
		url.Values{"uriPatterns": {"at://did:plc:abcdefghijklmnopqrstuvwx/*"}}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Labels) != 1 {
		t.Fatalf("prefix match labels = %+v", out.Labels)
	}
}

func TestReservedAndAdultHelpers(t *testing.T) {
	if !ReservedLabel("!takedown") || ReservedLabel("porn") {
		t.Fatal("ReservedLabel wrong")
	}
	if !AdultContentLabel("porn") || !AdultContentLabel("sexual") || AdultContentLabel("spam") {
		t.Fatal("AdultContentLabel wrong")
	}
}

func officialAndCommunity() (identity.DID, identity.DID) {
	return identity.PLCFromGenesis([]byte("official")), identity.PLCFromGenesis([]byte("community"))
}

func TestDecideSubscriptionFiltering(t *testing.T) {
	official, community := officialAndCommunity()
	prefs := Preferences{
		Subscriptions: map[string]bool{}, // not subscribed to community
		Reactions:     map[string]Visibility{"spam": Hide},
		Adult:         true,
	}
	labels := []events.Label{{Src: string(community), URI: postURI, Val: "spam"}}
	if got := prefs.Decide(labels, official); got != Ignore {
		t.Fatalf("unsubscribed labeler must be ignored, got %q", got)
	}
	prefs.Subscriptions[string(community)] = true
	if got := prefs.Decide(labels, official); got != Hide {
		t.Fatalf("subscribed labeler must apply, got %q", got)
	}
}

func TestDecideOfficialAlwaysApplies(t *testing.T) {
	official, _ := officialAndCommunity()
	prefs := Preferences{Adult: true} // no subscriptions at all
	labels := []events.Label{{Src: string(official), URI: postURI, Val: "!takedown"}}
	if got := prefs.Decide(labels, official); got != Hide {
		t.Fatalf("!takedown must hide, got %q", got)
	}
}

func TestDecideReservedOnlyFromOfficial(t *testing.T) {
	official, community := officialAndCommunity()
	prefs := Preferences{
		Subscriptions: map[string]bool{string(community): true},
		Adult:         true,
	}
	labels := []events.Label{{Src: string(community), URI: postURI, Val: "!takedown"}}
	if got := prefs.Decide(labels, official); got != Ignore {
		t.Fatalf("reserved label from community labeler must be invalid, got %q", got)
	}
}

func TestDecideAdultGate(t *testing.T) {
	official, _ := officialAndCommunity()
	minor := Preferences{Adult: false}
	adult := Preferences{Adult: true, Reactions: map[string]Visibility{"porn": Warn}}
	labels := []events.Label{{Src: string(official), URI: postURI, Val: "porn"}}
	if got := minor.Decide(labels, official); got != Hide {
		t.Fatalf("minor must have porn hidden, got %q", got)
	}
	if got := adult.Decide(labels, official); got != Warn {
		t.Fatalf("adult with warn pref, got %q", got)
	}
}

func TestDecideNegationClears(t *testing.T) {
	official, _ := officialAndCommunity()
	prefs := Preferences{Adult: true, Reactions: map[string]Visibility{"spam": Hide}}
	labels := []events.Label{
		{Src: string(official), URI: postURI, Val: "spam"},
		{Src: string(official), URI: postURI, Val: "spam", Neg: true},
	}
	// Decide sees the raw event list; negated events don't act.
	// (Callers resolve active state first; here only the non-neg
	// application counts — strictest of remaining = Hide from the
	// first event.)
	if got := prefs.Decide(labels[1:], official); got != Ignore {
		t.Fatalf("negation event alone must not act, got %q", got)
	}
}

func TestDecideStrictestWins(t *testing.T) {
	official, community := officialAndCommunity()
	prefs := Preferences{
		Subscriptions: map[string]bool{string(community): true},
		Reactions:     map[string]Visibility{"a": Warn, "b": Hide},
		Adult:         true,
	}
	labels := []events.Label{
		{Src: string(community), URI: postURI, Val: "a"},
		{Src: string(community), URI: postURI, Val: "b"},
	}
	if got := prefs.Decide(labels, official); got != Hide {
		t.Fatalf("strictest must win, got %q", got)
	}
}

func TestValuesSorted(t *testing.T) {
	s := newService(t, "zeta", "alpha")
	vals := s.Values()
	sort.Strings(vals)
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
}
