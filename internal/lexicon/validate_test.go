package lexicon

import (
	"strings"
	"testing"
	"time"
)

var vts = time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)

func TestValidateWellFormedRecords(t *testing.T) {
	cases := map[string]map[string]any{
		Post:           NewPost("hello", []string{"en"}, vts),
		Like:           NewLike("at://did:plc:a/app.bsky.feed.post/1", vts),
		Repost:         NewRepost("at://did:plc:a/app.bsky.feed.post/1", vts),
		Follow:         NewFollow("did:plc:abcdefghijklmnopqrstuvwx", vts),
		Block:          NewBlock("did:plc:abcdefghijklmnopqrstuvwx", vts),
		Profile:        NewProfile("Alice", "about me"),
		FeedGenerator:  NewFeedGenerator("did:web:svc.example", "Feed", "desc", vts),
		LabelerService: NewLabelerService([]LabelValueDefinition{{Value: "spam"}}, vts),
		WhiteWindEntry: NewWhiteWindEntry("Title", "body", vts), // unknown schema: accepted
	}
	for coll, rec := range cases {
		if err := ValidateRecord(coll, rec); err != nil {
			t.Errorf("ValidateRecord(%s): %v", coll, err)
		}
	}
}

func TestValidateMissingRequiredField(t *testing.T) {
	rec := NewPost("x", nil, vts)
	delete(rec, "text")
	if err := ValidateRecord(Post, rec); err == nil {
		t.Fatal("post without text must fail")
	}
	like := NewLike("at://did:plc:a/app.bsky.feed.post/1", vts)
	delete(like, "subject")
	if err := ValidateRecord(Like, like); err == nil {
		t.Fatal("like without subject must fail")
	}
}

func TestValidateTypeMismatch(t *testing.T) {
	rec := NewPost("x", nil, vts)
	if err := ValidateRecord(Like, rec); err == nil {
		t.Fatal("post record in like collection must fail")
	}
}

func TestValidateFieldTypes(t *testing.T) {
	rec := NewPost("x", nil, vts)
	rec["text"] = 42
	if err := ValidateRecord(Post, rec); err == nil {
		t.Fatal("numeric text must fail")
	}
	rec = NewPost("x", nil, vts)
	rec["langs"] = []any{"en", 7}
	if err := ValidateRecord(Post, rec); err == nil {
		t.Fatal("mixed langs array must fail")
	}
	follow := NewFollow("did:plc:abcdefghijklmnopqrstuvwx", vts)
	follow["subject"] = map[string]any{"did": "x"}
	if err := ValidateRecord(Follow, follow); err == nil {
		t.Fatal("object follow subject must fail")
	}
}

func TestValidateLengthLimits(t *testing.T) {
	rec := NewPost(strings.Repeat("x", 3001), nil, vts)
	if err := ValidateRecord(Post, rec); err == nil {
		t.Fatal("3001-byte post must fail")
	}
	if err := ValidateRecord(Post, NewPost(strings.Repeat("x", 3000), nil, vts)); err != nil {
		t.Fatalf("3000-byte post must pass: %v", err)
	}
}

func TestValidateBadTimestamp(t *testing.T) {
	rec := NewPost("x", nil, vts)
	rec["createdAt"] = "yesterday"
	if err := ValidateRecord(Post, rec); err == nil {
		t.Fatal("unparseable createdAt must fail")
	}
}

func TestValidateBadCollectionNSID(t *testing.T) {
	if err := ValidateRecord("not-an-nsid", map[string]any{}); err == nil {
		t.Fatal("invalid NSID must fail")
	}
}

func TestValidateSubjectURIShape(t *testing.T) {
	like := NewLike("at://did:plc:a/app.bsky.feed.post/1", vts)
	like["subject"] = map[string]any{"cid": "no uri here"}
	if err := ValidateRecord(Like, like); err == nil {
		t.Fatal("like subject without uri must fail")
	}
}
