package lexicon

import (
	"testing"
	"time"

	"blueskies/internal/cbor"
)

var ts = time.Date(2024, 4, 1, 10, 30, 0, 0, time.UTC)

func TestValidateNSID(t *testing.T) {
	good := []string{Post, Like, Follow, FeedGenerator, LabelerService, WhiteWindEntry,
		"com.atproto.sync.getRepo"}
	for _, n := range good {
		if err := ValidateNSID(n); err != nil {
			t.Errorf("ValidateNSID(%q): %v", n, err)
		}
	}
	bad := []string{"", "single", "two.parts", "has space.x.y", ".leading.dot.x",
		"trailing.dot.", "Upper.Case.First"}
	for _, n := range bad {
		if err := ValidateNSID(n); err == nil {
			t.Errorf("ValidateNSID(%q): expected error", n)
		}
	}
}

func TestIsBlueskyLexicon(t *testing.T) {
	if !IsBlueskyLexicon(Post) || !IsBlueskyLexicon("com.atproto.label.defs") {
		t.Fatal("bsky lexicons misclassified")
	}
	if IsBlueskyLexicon(WhiteWindEntry) {
		t.Fatal("whtwnd must be non-Bluesky")
	}
}

func TestTimeRoundTrip(t *testing.T) {
	s := FormatTime(ts)
	got, err := ParseTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ts) {
		t.Fatalf("round trip: %v vs %v", got, ts)
	}
	if _, err := ParseTime("yesterday"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestPostRecord(t *testing.T) {
	rec := NewPost("hello world", []string{"en", "pt"}, ts)
	if RecordType(rec) != Post {
		t.Fatalf("type = %q", RecordType(rec))
	}
	if PostText(rec) != "hello world" {
		t.Fatalf("text = %q", PostText(rec))
	}
	langs := PostLangs(rec)
	if len(langs) != 2 || langs[0] != "en" || langs[1] != "pt" {
		t.Fatalf("langs = %v", langs)
	}
	created, ok := CreatedAt(rec)
	if !ok || !created.Equal(ts) {
		t.Fatalf("createdAt = %v %v", created, ok)
	}
	// Must survive CBOR round trip (the storage encoding).
	data, err := cbor.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := cbor.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if PostText(back) != "hello world" || len(PostLangs(back)) != 2 {
		t.Fatalf("CBOR round trip lost fields: %v", back)
	}
}

func TestReplyRecord(t *testing.T) {
	rec := NewReply("re", "at://did:plc:a/app.bsky.feed.post/p", "at://did:plc:a/app.bsky.feed.post/r", ts)
	reply, ok := rec["reply"].(map[string]any)
	if !ok {
		t.Fatal("reply missing")
	}
	parent := reply["parent"].(map[string]any)
	if parent["uri"] != "at://did:plc:a/app.bsky.feed.post/p" {
		t.Fatalf("parent = %v", parent)
	}
}

func TestLikeRepostSubject(t *testing.T) {
	uri := "at://did:plc:abcdefghijklmnopqrstuvwx/app.bsky.feed.post/3kaaaaaaaaaa2"
	if got := SubjectURI(NewLike(uri, ts)); got != uri {
		t.Fatalf("like subject = %q", got)
	}
	if got := SubjectURI(NewRepost(uri, ts)); got != uri {
		t.Fatalf("repost subject = %q", got)
	}
}

func TestFollowBlockSubject(t *testing.T) {
	did := "did:plc:abcdefghijklmnopqrstuvwx"
	if got := SubjectDID(NewFollow(did, ts)); got != did {
		t.Fatalf("follow subject = %q", got)
	}
	if got := SubjectDID(NewBlock(did, ts)); got != did {
		t.Fatalf("block subject = %q", got)
	}
}

func TestFeedGeneratorRecord(t *testing.T) {
	rec := NewFeedGenerator("did:web:feeds.example.com", "Cat Pics", "all the cat pictures", ts)
	if FeedGeneratorServiceDID(rec) != "did:web:feeds.example.com" {
		t.Fatalf("service did = %q", FeedGeneratorServiceDID(rec))
	}
	if Description(rec) != "all the cat pictures" {
		t.Fatalf("description = %q", Description(rec))
	}
}

func TestLabelerServiceRecord(t *testing.T) {
	rec := NewLabelerService([]LabelValueDefinition{
		{Value: "spoiler", Severity: "inform", Blurs: "content"},
		{Value: "ai-imagery", Severity: "inform", Blurs: "none"},
	}, ts)
	vals := LabelerValues(rec)
	if len(vals) != 2 || vals[0] != "spoiler" || vals[1] != "ai-imagery" {
		t.Fatalf("values = %v", vals)
	}
	// Round trip through CBOR, as stored in a repo.
	data, err := cbor.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := cbor.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := LabelerValues(back); len(got) != 2 {
		t.Fatalf("values after round trip = %v", got)
	}
}

func TestWhiteWindEntry(t *testing.T) {
	rec := NewWhiteWindEntry("My Post", "# markdown", ts)
	if RecordType(rec) != WhiteWindEntry {
		t.Fatalf("type = %q", RecordType(rec))
	}
	if IsBlueskyLexicon(RecordType(rec)) {
		t.Fatal("whtwnd entry must count as non-Bluesky content")
	}
}
