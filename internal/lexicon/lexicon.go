// Package lexicon defines the record schemas exchanged on the
// network: NSID validation and constructors/parsers for the app.bsky
// and com.atproto record types the paper's dataset contains (posts,
// likes, reposts, follows, blocks, profiles, feed generator
// declarations, labeler service declarations), plus a non-Bluesky
// lexicon (com.whtwnd.blog.entry) exercising the paper's §4
// "Non-Bluesky content" finding.
//
// ATProto lexicons are JSON schema documents; here each type is a Go
// constructor producing the canonical record map, which keeps the
// wire format (deterministic DAG-CBOR) decoupled from Go structs.
package lexicon

import (
	"fmt"
	"regexp"
	"strings"
	"time"
)

// Record collection NSIDs used throughout the system.
const (
	Post           = "app.bsky.feed.post"
	Like           = "app.bsky.feed.like"
	Repost         = "app.bsky.feed.repost"
	Follow         = "app.bsky.graph.follow"
	Block          = "app.bsky.graph.block"
	Profile        = "app.bsky.actor.profile"
	FeedGenerator  = "app.bsky.feed.generator"
	LabelerService = "app.bsky.labeler.service"
	// WhiteWindEntry is a non-Bluesky lexicon observed in the firehose
	// (long-form blogging on atproto, §4).
	WhiteWindEntry = "com.whtwnd.blog.entry"
)

var nsidRe = regexp.MustCompile(`^[a-z]([a-z0-9-]*[a-z0-9])?(\.[a-z]([a-z0-9-]*[a-z0-9])?)+\.[a-zA-Z]([a-zA-Z0-9]*)$`)

// ValidateNSID checks the namespaced identifier grammar: at least
// three dot-separated segments, reverse-DNS style.
func ValidateNSID(nsid string) error {
	if len(nsid) > 317 {
		return fmt.Errorf("lexicon: NSID too long: %d", len(nsid))
	}
	if strings.Count(nsid, ".") < 2 {
		return fmt.Errorf("lexicon: NSID needs ≥3 segments: %q", nsid)
	}
	if !nsidRe.MatchString(nsid) {
		return fmt.Errorf("lexicon: invalid NSID %q", nsid)
	}
	return nil
}

// IsBlueskyLexicon reports whether the collection belongs to the
// Bluesky application namespaces (app.bsky.* / com.atproto.*) — the
// paper counts everything else as "non-Bluesky content".
func IsBlueskyLexicon(collection string) bool {
	return strings.HasPrefix(collection, "app.bsky.") ||
		strings.HasPrefix(collection, "com.atproto.")
}

// TimeFormat is the RFC 3339 profile used in record timestamps.
const TimeFormat = "2006-01-02T15:04:05.000Z"

// FormatTime renders a record timestamp.
func FormatTime(t time.Time) string { return t.UTC().Format(TimeFormat) }

// ParseTime parses a record timestamp, accepting RFC 3339 variants.
func ParseTime(s string) (time.Time, error) {
	for _, layout := range []string{TimeFormat, time.RFC3339, time.RFC3339Nano} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("lexicon: bad timestamp %q", s)
}

// NewPost builds an app.bsky.feed.post record. langs may be empty.
func NewPost(text string, langs []string, createdAt time.Time) map[string]any {
	rec := map[string]any{
		"$type":     Post,
		"text":      text,
		"createdAt": FormatTime(createdAt),
	}
	if len(langs) > 0 {
		tags := make([]any, len(langs))
		for i, l := range langs {
			tags[i] = l
		}
		rec["langs"] = tags
	}
	return rec
}

// NewReply builds a post that replies to parent/root URIs.
func NewReply(text string, parentURI, rootURI string, createdAt time.Time) map[string]any {
	rec := NewPost(text, nil, createdAt)
	rec["reply"] = map[string]any{
		"parent": map[string]any{"uri": parentURI},
		"root":   map[string]any{"uri": rootURI},
	}
	return rec
}

// NewLike builds an app.bsky.feed.like record for subjectURI.
func NewLike(subjectURI string, createdAt time.Time) map[string]any {
	return map[string]any{
		"$type":     Like,
		"subject":   map[string]any{"uri": subjectURI},
		"createdAt": FormatTime(createdAt),
	}
}

// NewRepost builds an app.bsky.feed.repost record.
func NewRepost(subjectURI string, createdAt time.Time) map[string]any {
	return map[string]any{
		"$type":     Repost,
		"subject":   map[string]any{"uri": subjectURI},
		"createdAt": FormatTime(createdAt),
	}
}

// NewFollow builds an app.bsky.graph.follow record for subjectDID.
func NewFollow(subjectDID string, createdAt time.Time) map[string]any {
	return map[string]any{
		"$type":     Follow,
		"subject":   subjectDID,
		"createdAt": FormatTime(createdAt),
	}
}

// NewBlock builds an app.bsky.graph.block record for subjectDID.
func NewBlock(subjectDID string, createdAt time.Time) map[string]any {
	return map[string]any{
		"$type":     Block,
		"subject":   subjectDID,
		"createdAt": FormatTime(createdAt),
	}
}

// NewProfile builds an app.bsky.actor.profile record.
func NewProfile(displayName, description string) map[string]any {
	return map[string]any{
		"$type":       Profile,
		"displayName": displayName,
		"description": description,
	}
}

// NewFeedGenerator builds the app.bsky.feed.generator declaration
// record: the pointer from a creator's repo to the feed service DID
// and its human-readable metadata (§2, Feed Generators).
func NewFeedGenerator(serviceDID, displayName, description string, createdAt time.Time) map[string]any {
	return map[string]any{
		"$type":       FeedGenerator,
		"did":         serviceDID,
		"displayName": displayName,
		"description": description,
		"createdAt":   FormatTime(createdAt),
	}
}

// LabelValueDefinition describes one label value a labeler emits.
type LabelValueDefinition struct {
	Value    string `json:"identifier"`
	Severity string `json:"severity"` // inform | alert | none
	Blurs    string `json:"blurs"`    // content | media | none
}

// NewLabelerService builds the app.bsky.labeler.service declaration
// record listing the label values the service emits (§2, Labelers).
func NewLabelerService(values []LabelValueDefinition, createdAt time.Time) map[string]any {
	vals := make([]any, len(values))
	defs := make([]any, len(values))
	for i, v := range values {
		vals[i] = v.Value
		defs[i] = map[string]any{
			"identifier": v.Value,
			"severity":   v.Severity,
			"blurs":      v.Blurs,
		}
	}
	return map[string]any{
		"$type": LabelerService,
		"policies": map[string]any{
			"labelValues":           vals,
			"labelValueDefinitions": defs,
		},
		"createdAt": FormatTime(createdAt),
	}
}

// NewWhiteWindEntry builds a com.whtwnd.blog.entry record (non-Bluesky
// lexicon content carried over the same infrastructure).
func NewWhiteWindEntry(title, markdown string, createdAt time.Time) map[string]any {
	return map[string]any{
		"$type":     WhiteWindEntry,
		"title":     title,
		"content":   markdown,
		"createdAt": FormatTime(createdAt),
	}
}

// RecordType extracts the $type of a decoded record, or "".
func RecordType(rec map[string]any) string {
	t, _ := rec["$type"].(string)
	return t
}

// PostText extracts the text of a post record.
func PostText(rec map[string]any) string {
	t, _ := rec["text"].(string)
	return t
}

// PostLangs extracts the language tags of a post record.
func PostLangs(rec map[string]any) []string {
	raw, _ := rec["langs"].([]any)
	out := make([]string, 0, len(raw))
	for _, v := range raw {
		if s, ok := v.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// SubjectURI extracts the subject URI of a like/repost record.
func SubjectURI(rec map[string]any) string {
	switch s := rec["subject"].(type) {
	case map[string]any:
		uri, _ := s["uri"].(string)
		return uri
	case string:
		return s
	}
	return ""
}

// SubjectDID extracts the subject DID of a follow/block record.
func SubjectDID(rec map[string]any) string {
	s, _ := rec["subject"].(string)
	return s
}

// CreatedAt extracts and parses the record timestamp.
func CreatedAt(rec map[string]any) (time.Time, bool) {
	s, _ := rec["createdAt"].(string)
	if s == "" {
		return time.Time{}, false
	}
	t, err := ParseTime(s)
	if err != nil {
		return time.Time{}, false
	}
	return t, true
}

// FeedGeneratorServiceDID extracts the hosting service DID from a
// feed generator declaration.
func FeedGeneratorServiceDID(rec map[string]any) string {
	s, _ := rec["did"].(string)
	return s
}

// Description extracts the description field of profile/generator
// records.
func Description(rec map[string]any) string {
	s, _ := rec["description"].(string)
	return s
}

// LabelerValues extracts the declared label values from a labeler
// service record.
func LabelerValues(rec map[string]any) []string {
	policies, _ := rec["policies"].(map[string]any)
	raw, _ := policies["labelValues"].([]any)
	out := make([]string, 0, len(raw))
	for _, v := range raw {
		if s, ok := v.(string); ok {
			out = append(out, s)
		}
	}
	return out
}
