package lexicon

import (
	"fmt"
)

// fieldSpec describes one record field constraint.
type fieldSpec struct {
	name     string
	kind     string // "string" | "strings" | "subject-uri" | "subject-did" | "map"
	required bool
	maxLen   int // for strings; 0 = unlimited
}

// schemas maps collection NSIDs to their field constraints — a
// lightweight stand-in for the JSON lexicon documents the protocol
// publishes. Unknown collections are accepted unvalidated (ATProto is
// deliberately open to new lexicons; §2, §4 "Non-Bluesky content").
var schemas = map[string][]fieldSpec{
	Post: {
		{name: "text", kind: "string", required: true, maxLen: 3000},
		{name: "createdAt", kind: "string", required: true},
		{name: "langs", kind: "strings"},
		{name: "reply", kind: "map"},
	},
	Like: {
		{name: "subject", kind: "subject-uri", required: true},
		{name: "createdAt", kind: "string", required: true},
	},
	Repost: {
		{name: "subject", kind: "subject-uri", required: true},
		{name: "createdAt", kind: "string", required: true},
	},
	Follow: {
		{name: "subject", kind: "subject-did", required: true},
		{name: "createdAt", kind: "string", required: true},
	},
	Block: {
		{name: "subject", kind: "subject-did", required: true},
		{name: "createdAt", kind: "string", required: true},
	},
	Profile: {
		{name: "displayName", kind: "string", maxLen: 640},
		{name: "description", kind: "string", maxLen: 2560},
	},
	FeedGenerator: {
		{name: "did", kind: "string", required: true},
		{name: "displayName", kind: "string", required: true, maxLen: 240},
		{name: "description", kind: "string", maxLen: 3000},
		{name: "createdAt", kind: "string", required: true},
	},
	LabelerService: {
		{name: "policies", kind: "map", required: true},
		{name: "createdAt", kind: "string", required: true},
	},
}

// ValidateRecord checks a record against its collection's schema.
// The record's $type, when present, must match the collection.
// Unknown collections pass (open lexicon ecosystem) provided the
// collection is a valid NSID.
func ValidateRecord(collection string, rec map[string]any) error {
	if err := ValidateNSID(collection); err != nil {
		return err
	}
	if t := RecordType(rec); t != "" && t != collection {
		return fmt.Errorf("lexicon: record $type %q does not match collection %q", t, collection)
	}
	specs, known := schemas[collection]
	if !known {
		return nil
	}
	for _, spec := range specs {
		v, present := rec[spec.name]
		if !present || v == nil {
			if spec.required {
				return fmt.Errorf("lexicon: %s requires field %q", collection, spec.name)
			}
			continue
		}
		if err := checkField(collection, spec, v); err != nil {
			return err
		}
	}
	// CreatedAt, when present, must parse.
	if s, ok := rec["createdAt"].(string); ok {
		if _, err := ParseTime(s); err != nil {
			return fmt.Errorf("lexicon: %s: %w", collection, err)
		}
	}
	return nil
}

func checkField(collection string, spec fieldSpec, v any) error {
	bad := func(want string) error {
		return fmt.Errorf("lexicon: %s field %q must be %s, got %T", collection, spec.name, want, v)
	}
	switch spec.kind {
	case "string":
		s, ok := v.(string)
		if !ok {
			return bad("a string")
		}
		if spec.maxLen > 0 && len(s) > spec.maxLen {
			return fmt.Errorf("lexicon: %s field %q exceeds %d bytes", collection, spec.name, spec.maxLen)
		}
	case "strings":
		arr, ok := v.([]any)
		if !ok {
			return bad("an array of strings")
		}
		for _, e := range arr {
			if _, ok := e.(string); !ok {
				return bad("an array of strings")
			}
		}
	case "subject-uri":
		m, ok := v.(map[string]any)
		if !ok {
			return bad("an object with a uri")
		}
		if _, ok := m["uri"].(string); !ok {
			return fmt.Errorf("lexicon: %s field %q missing uri", collection, spec.name)
		}
	case "subject-did":
		if _, ok := v.(string); !ok {
			return bad("a DID string")
		}
	case "map":
		if _, ok := v.(map[string]any); !ok {
			return bad("an object")
		}
	}
	return nil
}
