package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a Go map in determinism-critical
// packages when the loop body does something order-sensitive:
// appends to a slice that outlives the loop, writes to an encoder or
// stream, or sends on a channel. Map iteration order is randomized
// per run, so any of those leaks nondeterminism straight into bytes
// that must be identical across workers, partitions, and machines.
//
// Two shapes stay legal without annotation:
//   - commutative folds (sums, max, writes into another map) — no
//     order-sensitive operation, so the loop never matches;
//   - the collect-then-sort idiom: every slice appended to inside the
//     loop is passed to a sort.*/slices.Sort* call later in the same
//     function.
//
// Everything else needs an audited `//lint:ordered <why>` comment on
// the loop (or the line above) — e.g. when the sort happens in the
// caller, or the consumer is genuinely order-insensitive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive iteration over maps in determinism-critical packages; " +
		"sort the collected keys/values or audit the site with //lint:ordered",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !Critical(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.testFile(fd.Pos()) {
				continue
			}
			checkFuncMapOrder(pass, fd)
		}
	}
	return nil
}

func checkFuncMapOrder(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed(rng.Pos(), "ordered") {
			return true
		}
		appended, other := orderSensitiveOps(pass, rng)
		if other != "" {
			pass.Reportf(rng.Pos(), "map iteration %s in determinism-critical package %s: iteration order is randomized; iterate a sorted key slice or audit with //lint:ordered", other, pass.Pkg.Path())
			return true
		}
		for obj, pos := range appended {
			if !sortedAfter(pass, fd, rng, obj) {
				pass.Reportf(pos, "map iteration appends to %q without a later sort in this function: iteration order is randomized; sort %q before use or audit with //lint:ordered", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// orderSensitiveOps scans a map-range body. It returns the set of
// outer-scope slice variables the body appends to (repairable by a
// later sort), and a description of the first unrepairable
// order-sensitive operation (encoder/stream write or channel send),
// "" if none.
func orderSensitiveOps(pass *Pass, rng *ast.RangeStmt) (map[*types.Var]token.Pos, string) {
	appended := make(map[*types.Var]token.Pos)
	var other string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if other == "" {
				other = "sends on a channel"
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				if v := outerVar(pass, rng, n.Lhs[i]); v != nil {
					if _, seen := appended[v]; !seen {
						appended[v] = n.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if other == "" {
				if desc := streamWriteCall(pass, n); desc != "" {
					other = desc
				}
			}
		}
		return true
	})
	return appended, other
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outerVar resolves expr to a variable declared outside the range
// statement, or nil. A slice declared inside the loop body is
// per-iteration state; its element order cannot depend on map order.
func outerVar(pass *Pass, rng *ast.RangeStmt, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v == nil {
		return nil
	}
	if v.Pos() >= rng.Pos() && v.Pos() < rng.End() {
		return nil
	}
	return v
}

// streamWriters are method/function names whose calls commit bytes or
// values in call order: once emitted, a later sort cannot repair the
// sequence.
var streamWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeBlock": true, "Marshal": true, "MustMarshal": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

// streamWriteCall describes call if it is an order-committing
// write/encode, "" otherwise.
func streamWriteCall(pass *Pass, call *ast.CallExpr) string {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return ""
	}
	if !streamWriters[name] {
		return ""
	}
	return "calls " + name + " (order-committing write)"
}

// sortedAfter reports whether obj is passed to a sort.* or
// slices.Sort* call positioned after the range statement in fd. The
// check is positional, not flow-sensitive: collect-then-sort is a
// straight-line idiom here, and a sort on any later path is the
// author signalling they know the slice arrives unordered.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		fn := pass.funcFor(call)
		path := pathOf(fn)
		if !(path == "sort" || (path == "slices" && strings.HasPrefix(fn.Name(), "Sort"))) {
			return true
		}
		for _, arg := range call.Args {
			if v, ok := pass.TypesInfo.ObjectOf(identOf(arg)).(*types.Var); ok && v == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// identOf unwraps expr to its base identifier (through parens and
// unary &), or nil.
func identOf(expr ast.Expr) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e
	case *ast.UnaryExpr:
		return identOf(e.X)
	}
	return nil
}
