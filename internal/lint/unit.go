package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the command-line protocol `go vet -vettool`
// drives (the same contract x/tools' unitchecker satisfies):
//
//	bskylint -V=full        describe the executable (build caching)
//	bskylint -flags         describe supported flags as JSON
//	bskylint [-NAME] x.cfg  analyze one compilation unit
//
// The .cfg file is JSON describing the unit: its Go files, the
// import→package map, and the export-data file per dependency. The
// driver parses and type-checks the unit with go/importer reading
// that export data — standard library only, no go/packages.

// unitConfig mirrors the JSON the go command writes for each
// compilation unit (the subset this driver consumes).
type unitConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool over the given analyzers.
// It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
	flag.Var(versionFlag{}, "V", "print version and exit (for the go command's build cache)")
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer\n"+a.Doc)
	}
	flag.Parse()

	if *printflags {
		printFlagsJSON()
		os.Exit(0)
	}

	// If any -NAME flag was set, run only those analyzers.
	var selected []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: invoke via go vet -vettool=%s (got args %q)", progname, args)
	}
	diags, err := runUnit(args[0], selected)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	os.Exit(0)
}

// runUnit analyzes the compilation unit described by cfgFile and
// returns rendered "pos: message" diagnostics.
func runUnit(cfgFile string, analyzers []*Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode config %s: %v", cfgFile, err)
	}

	// The go command caches a facts file per unit and feeds it to
	// dependents; these analyzers are fact-free, so the file is
	// always empty — but it must exist for the cache entry.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil // dependency unit: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	var rendered []string
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			rendered = append(rendered, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return rendered, nil
}

// newTypesInfo allocates every map the analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printFlagsJSON emits the flag list the go command reads to learn
// which vet flags this tool accepts.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full handshake: the go command hashes
// the reported version into its build cache key, so the output must
// change whenever the binary does — hash the executable itself.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
