package lint

import (
	"go/ast"
	"go/types"
)

// ShardCodec checks every implementation of the package-scope
// `Accumulator` interface (internal/analysis) for a sound shard
// codec:
//
//  1. UnmarshalShard must engage with its StateBounds parameter.
//     Either the bounds are used — directly (b.checkSrc, index
//     comparisons) or by forwarding to a validation helper — or the
//     parameter is explicitly blanked (`_ StateBounds`), the audited
//     statement that the wire form carries no interned ids. A named-
//     but-unused bounds parameter is the dangerous middle: the
//     signature promises validation the body never performs, and a
//     hostile or stale shard can out-index the level-two fold.
//
//  2. The type must be registered in NewFullEngine, the accumulator
//     registry that RunAll, the snapshot layer, and the codec
//     round-trip golden test (TestStateRoundTripGolden) all fold
//     through. An implementation outside the registry ships a codec
//     no golden ever exercises.
//
// The analyzer keys on the package defining an `Accumulator`
// interface with an UnmarshalShard method, so it is inert everywhere
// but internal/analysis (and its fixtures).
var ShardCodec = &Analyzer{
	Name: "shardcodec",
	Doc: "check Accumulator shard codecs: UnmarshalShard must use or explicitly blank its " +
		"StateBounds, and every implementation must be registered in NewFullEngine " +
		"(the registry the codec round-trip golden folds through)",
	Run: runShardCodec,
}

func runShardCodec(pass *Pass) error {
	iface := accumulatorInterface(pass.Pkg)
	if iface == nil {
		return nil
	}
	impls := accumulatorImpls(pass, iface)
	if len(impls) == 0 {
		return nil
	}
	checkBoundsUse(pass, impls)
	checkRegistration(pass, impls)
	return nil
}

// accumulatorInterface returns the package-scope Accumulator
// interface if it declares an UnmarshalShard method, else nil.
func accumulatorInterface(pkg *types.Package) *types.Interface {
	obj := pkg.Scope().Lookup("Accumulator")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "UnmarshalShard" {
			return iface
		}
	}
	return nil
}

// accumulatorImpls collects the named types in the package that
// implement iface, excluding test-file declarations (test doubles
// are not wire types).
func accumulatorImpls(pass *Pass, iface *types.Interface) []*types.Named {
	var impls []*types.Named
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		if pass.testFile(tn.Pos()) {
			continue
		}
		impls = append(impls, named)
	}
	return impls
}

// checkBoundsUse flags UnmarshalShard methods whose StateBounds
// parameter is named but never read.
func checkBoundsUse(pass *Pass, impls []*types.Named) {
	decls := methodDecls(pass, "UnmarshalShard")
	for _, named := range impls {
		fd := decls[named.Obj()]
		if fd == nil || fd.Body == nil || len(fd.Type.Params.List) < 2 {
			continue
		}
		boundsField := fd.Type.Params.List[len(fd.Type.Params.List)-1]
		for _, name := range boundsField.Names {
			if name.Name == "_" {
				continue // audited: this wire form carries no interned ids
			}
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil || usesObject(pass, fd.Body, obj) {
				continue
			}
			pass.Reportf(fd.Pos(), "%s.UnmarshalShard names its StateBounds parameter %q but never validates against it: check every interned id it decodes, or blank the parameter to assert the wire form carries none", named.Obj().Name(), name.Name)
		}
	}
}

// methodDecls indexes the unit's FuncDecls named name by receiver
// base type.
func methodDecls(pass *Pass, name string) map[*types.TypeName]*ast.FuncDecl {
	decls := make(map[*types.TypeName]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if tn := receiverTypeName(pass, fd.Recv.List[0].Type); tn != nil {
				decls[tn] = fd
			}
		}
	}
	return decls
}

// receiverTypeName resolves a method receiver type expression to its
// named type's TypeName.
func receiverTypeName(pass *Pass, expr ast.Expr) *types.TypeName {
	t := pass.TypesInfo.TypeOf(expr)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// usesObject reports whether body contains a use of obj.
func usesObject(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// checkRegistration flags implementations never constructed by
// NewFullEngine or the constructors it calls. Units without a
// NewFullEngine declaration (they see only a slice of the package)
// skip the check.
func checkRegistration(pass *Pass, impls []*types.Named) {
	registry := lookupFuncDecl(pass, "NewFullEngine")
	if registry == nil {
		return
	}
	constructed := make(map[*types.TypeName]bool)
	scanConstructed(pass, registry.Body, constructed)
	for _, callee := range calleeDecls(pass, registry.Body) {
		scanConstructed(pass, callee.Body, constructed)
	}
	for _, named := range impls {
		if !constructed[named.Obj()] {
			pass.Reportf(named.Obj().Pos(), "%s implements Accumulator but is not registered in NewFullEngine: the codec round-trip golden (TestStateRoundTripGolden) never exercises its MarshalShard/UnmarshalShard pair", named.Obj().Name())
		}
	}
}

// lookupFuncDecl finds the package-level function declaration named
// name in the unit's files.
func lookupFuncDecl(pass *Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// calleeDecls resolves the package-level functions called within
// body to their declarations in this unit.
func calleeDecls(pass *Pass, body *ast.BlockStmt) []*ast.FuncDecl {
	index := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					index[fn] = fd
				}
			}
		}
	}
	var decls []*ast.FuncDecl
	seen := make(map[*ast.FuncDecl]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fd := index[pass.funcFor(call)]; fd != nil && !seen[fd] {
			seen[fd] = true
			decls = append(decls, fd)
		}
		return true
	})
	return decls
}

// scanConstructed records the named types whose composite literals
// appear in body.
func scanConstructed(pass *Pass, body *ast.BlockStmt, out map[*types.TypeName]bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(cl)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			out[named.Obj()] = true
		}
		return true
	})
}
