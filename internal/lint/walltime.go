package lint

import (
	"go/ast"
	"strings"
)

// WallTime forbids wall-clock reads and unseeded randomness in
// determinism-critical packages. A `-seed` run that consults
// time.Now (directly, or via time.Since/time.Until) or the global
// math/rand state produces different bytes on every invocation —
// exactly the class of bug the parity goldens only catch after the
// fact. Sim and protocol packages take the injected-Clock route
// instead (see internal/labeler.Config.Clock); genuinely wall-clock
// sites (live-network collection deadlines) carry an audited
// //lint:walltime comment.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Until and unseeded math/rand in determinism-critical packages; " +
		"inject a Clock (or a seeded *rand.Rand) instead, or audit the site with //lint:walltime",
	Run: runWallTime,
}

// wallClockFuncs are the package time functions that read the wall
// clock. time.Since and time.Until are Now in disguise — flagging
// only Now invites `d := time.Until(deadline)` regressions.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(pass *Pass) error {
	if !Critical(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.funcFor(call)
			if fn == nil || pass.testFile(call.Pos()) {
				return true
			}
			switch path := pathOf(fn); {
			case path == "time" && wallClockFuncs[fn.Name()]:
				if !pass.Suppressed(call.Pos(), "walltime") {
					pass.Reportf(call.Pos(), "time.%s in determinism-critical package %s: inject a Clock (seeded, monotonic) or audit with //lint:walltime", fn.Name(), pass.Pkg.Path())
				}
			case (path == "math/rand" || path == "math/rand/v2") && unseededRandFunc(fn.Name()):
				if !pass.Suppressed(call.Pos(), "walltime") {
					pass.Reportf(call.Pos(), "global %s.%s in determinism-critical package %s: draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead", path, fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

// unseededRandFunc reports whether name is a package-level math/rand
// function that draws from the process-global (randomly seeded)
// source. The New* constructors are the seeding path itself and stay
// legal; everything else at package scope is the global source.
func unseededRandFunc(name string) bool {
	return !strings.HasPrefix(name, "New")
}
