package lint

import (
	"go/ast"
	"go/types"
)

// CBORWire flags handing a value whose type contains a reachable
// non-string-keyed Go map to the DAG-CBOR encoder in determinism-
// critical packages. Wire forms in those packages must be byte-
// deterministic so shard states can be content-addressed, cached,
// and diffed (DESIGN.md §9): maps with non-string keys travel as
// key-sorted pair slices, never as Go maps — the encoder cannot
// represent them (DAG-CBOR map keys are strings; internal/cbor
// rejects anything else at runtime), so a map-typed wire field is a
// guaranteed marshal error the parity tests only hit if the field is
// ever non-empty. String-keyed maps are canonically key-sorted by
// the encoder and stay legal.
//
// Protocol packages (pds, repo, lexicon) marshal map[string]any
// records as AT Proto requires; they are not determinism-critical
// and are out of scope.
var CBORWire = &Analyzer{
	Name: "cborwire",
	Doc: "flag marshaling a non-string-keyed Go map (directly or via a struct field) into a " +
		"DAG-CBOR wire form in determinism-critical packages; use key-sorted pair slices " +
		"per DESIGN.md §9, or audit with //lint:cborwire",
	Run: runCBORWire,
}

// cborPackage is the repo's DAG-CBOR codec; its Marshal entry points
// define "the wire".
const cborPackage = "blueskies/internal/cbor"

var cborMarshalFuncs = map[string]bool{"Marshal": true, "MustMarshal": true}

func runCBORWire(pass *Pass) error {
	if !Critical(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.funcFor(call)
			if fn == nil || pathOf(fn) != cborPackage || !cborMarshalFuncs[fn.Name()] {
				return true
			}
			if len(call.Args) == 0 || pass.testFile(call.Pos()) || pass.Suppressed(call.Pos(), "cborwire") {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok {
				return true
			}
			if path := mapPath(tv.Type, nil); path != "" {
				pass.Reportf(call.Pos(), "cbor.%s of a wire form containing a non-string-keyed Go map (%s) in determinism-critical package %s: use a key-sorted pair slice per DESIGN.md §9, or audit with //lint:cborwire", fn.Name(), path, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// mapPath walks t through pointers, slices, arrays, map values, and
// struct fields looking for a non-string-keyed map type, and returns
// a human-readable path to the first one found ("" if none). seen
// guards named-type cycles.
func mapPath(t types.Type, seen map[*types.Named]bool) string {
	switch t := t.(type) {
	case *types.Map:
		if b, ok := t.Key().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			return t.String()
		}
		return mapPath(t.Elem(), seen) // string keys: encoder sorts canonically
	case *types.Pointer:
		return mapPath(t.Elem(), seen)
	case *types.Slice:
		return mapPath(t.Elem(), seen)
	case *types.Array:
		return mapPath(t.Elem(), seen)
	case *types.Named:
		if seen[t] {
			return ""
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[t] = true
		if inner := mapPath(t.Underlying(), seen); inner != "" {
			return t.Obj().Name() + ": " + inner
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if inner := mapPath(f.Type(), seen); inner != "" {
				return "field " + f.Name() + ": " + inner
			}
		}
	}
	return ""
}
