package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// FrameGate flags wire-struct changes that aren't accompanied by a
// version gate. It fires only in packages that declare a
// DiskFormatVersion constant (the block-format authority — today
// internal/core): there, every `wire*` struct must carry a
// `//wire:v<N> fields=<M>` directive in its doc comment, where N is
// the first block format that encodes the struct (1 ≤ N ≤
// DiskFormatVersion) and M is the struct's field count. Structs
// without the `wire` name prefix opt into the same gate by carrying a
// directive — the columnar codecs serialize the record structs (User,
// Post, Label, …) field-by-field without a wire* mirror, so those
// declare directives too. Adding a wire struct without the directive,
// tagging it with a format the package doesn't declare yet, or
// changing a struct's shape without touching its directive all trip
// the analyzer — so a wire change cannot land without the author (and
// the reviewer) confronting the format version that gates it and the
// decode dispatch that must learn it.
var FrameGate = &Analyzer{
	Name: "framegate",
	Doc: "flag wire structs in block-format packages (those declaring DiskFormatVersion) that lack " +
		"a current //wire:v<N> fields=<M> directive; any directive-tagged struct is held to the same " +
		"gate regardless of name (the columnar codecs serialize record structs without wire* mirrors); " +
		"wire-shape changes must update the directive and, when the encoding changes, the format " +
		"version and its decode dispatch arm",
	Run: runFrameGate,
}

// wireDirectiveRE matches one version-gate directive line.
var wireDirectiveRE = regexp.MustCompile(`^//wire:v(\d+) fields=(\d+)$`)

func runFrameGate(pass *Pass) error {
	formatVersion, ok := diskFormatVersion(pass.Pkg)
	if !ok {
		return nil // not a block-format package
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				// wire*-named structs are always in scope; anything else
				// opts in by carrying a directive (the columnar codecs
				// serialize record structs without a wire* mirror).
				if _, _, tagged := wireDirective(gd, ts); !tagged && !strings.HasPrefix(ts.Name.Name, "wire") {
					continue
				}
				if pass.testFile(ts.Pos()) || pass.Suppressed(ts.Pos(), "framegate") {
					continue
				}
				checkWireStruct(pass, formatVersion, gd, ts, st)
			}
		}
	}
	return nil
}

// diskFormatVersion reads the package's DiskFormatVersion integer
// constant, reporting ok=false when the package doesn't declare one.
func diskFormatVersion(pkg *types.Package) (int, bool) {
	c, ok := pkg.Scope().Lookup("DiskFormatVersion").(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	if !ok {
		return 0, false
	}
	return int(v), true
}

// checkWireStruct validates one wire struct's directive against the
// struct's shape and the package's declared format version.
func checkWireStruct(pass *Pass, formatVersion int, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) {
	name := ts.Name.Name
	taggedVersion, taggedFields, found := wireDirective(gd, ts)
	if !found {
		pass.Reportf(ts.Pos(), "wire struct %s has no //wire:v<N> fields=<M> directive; every block-format wire struct must declare the format version that gates it and its field count (DESIGN.md §11), or audit with //lint:framegate", name)
		return
	}
	if taggedVersion < 1 || taggedVersion > formatVersion {
		pass.Reportf(ts.Pos(), "wire struct %s is tagged //wire:v%d but the package declares DiskFormatVersion = %d; bump DiskFormatVersion and add the decode dispatch arm before tagging a new format", name, taggedVersion, formatVersion)
		return
	}
	if n := fieldCount(st); n != taggedFields {
		pass.Reportf(ts.Pos(), "wire struct %s declares fields=%d but has %d fields; a wire-shape change must update the directive — and the format version plus its decode dispatch arm when the encoding changes", name, taggedFields, n)
	}
}

// wireDirective extracts the //wire:v<N> fields=<M> line from the
// type's doc comment (the TypeSpec's own doc in grouped declarations,
// the GenDecl's otherwise).
func wireDirective(gd *ast.GenDecl, ts *ast.TypeSpec) (version, fields int, found bool) {
	for _, doc := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			m := wireDirectiveRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			v, err1 := strconv.Atoi(m[1])
			f, err2 := strconv.Atoi(m[2])
			if err1 != nil || err2 != nil {
				continue
			}
			return v, f, true
		}
	}
	return 0, 0, false
}

// fieldCount counts a struct's fields the way the wire codecs see
// them: each declared name is one field, an embedded field counts as
// one.
func fieldCount(st *ast.StructType) int {
	n := 0
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			n++
			continue
		}
		n += len(f.Names)
	}
	return n
}
