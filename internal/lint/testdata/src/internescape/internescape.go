// Fixture for the internescape analyzer: a miniature of
// internal/analysis — the LabelChunk block unit, its per-record
// metadata, and accumulator shards that copy (clean) or alias (flag)
// the chunk's buffers.
package internescape

// Label is a stand-in for core.Label.
type Label struct {
	Val string
	Neg bool
}

// LabelMeta is the shared per-record metadata.
type LabelMeta struct {
	ValID int32
	RTSec float64
}

// LabelChunk arms the analyzer: package-scope struct with Meta and
// Labels fields.
type LabelChunk struct {
	Labels []Label
	Meta   []LabelMeta
	Base   int
}

// goodShard copies the elements it keeps: clean.
type goodShard struct {
	ids []int32
	rts []float64
}

func (s *goodShard) Labels(c *LabelChunk) {
	for i := range c.Labels {
		m := &c.Meta[i] // element pointer used within the call: fine
		s.ids = append(s.ids, m.ValID)
		s.rts = append(s.rts, m.RTSec)
	}
	local := c.Meta // local alias dies with the call: fine
	_ = local
	base := c.Base // scalar field copy: fine
	_ = base
	spread := make([]LabelMeta, 0, len(c.Meta))
	spread = append(spread, c.Meta...) // spread append copies elements: fine
	_ = spread
}

// hoardShard retains the chunk and its buffers.
type hoardShard struct {
	chunk *LabelChunk
	meta  []LabelMeta
	rows  []Label
	tail  []LabelMeta
	byID  map[int][]LabelMeta
}

func (s *hoardShard) Labels(c *LabelChunk) {
	s.chunk = c             // want "storing c aliases a per-block label chunk"
	s.meta = c.Meta         // want "storing c.Meta aliases a per-block label chunk"
	s.rows = c.Labels       // want "storing c.Labels aliases a per-block label chunk"
	s.tail = c.Meta[1:]     // want "storing c.Meta aliases a per-block label chunk"
	s.byID[c.Base] = c.Meta // want "storing c.Meta aliases a per-block label chunk"
}

// copyShard stores a chunk value copy — its slices still alias.
type copyShard struct {
	snap LabelChunk
	held LabelChunk
}

func (s *copyShard) Labels(c *LabelChunk) {
	s.snap = *c                       // want "storing \*c aliases a per-block label chunk"
	fresh := LabelChunk{Meta: c.Meta} // want "storing c.Meta aliases a per-block label chunk"
	_ = fresh
	owned := LabelChunk{Meta: append([]LabelMeta(nil), c.Meta...)} // copied elements: fine
	// Storing any existing chunk-typed reference is flagged — the
	// analyzer is a direct-store check, not an escape analysis, so it
	// cannot prove `owned` never aliased the caller's buffers.
	s.held = owned // want "storing owned aliases a per-block label chunk"
}

// auditedShard is the audited engine-side owner of the buffer.
type auditedShard struct {
	meta []LabelMeta
}

func (s *auditedShard) Labels(c *LabelChunk) {
	//lint:internescape engine-owned buffer recycled between blocks
	s.meta = c.Meta
}
