// Fixture for the framegate analyzer: this package declares
// DiskFormatVersion, so it is a block-format package and every wire
// struct must carry a current //wire:v<N> fields=<M> directive.
package framegate

// DiskFormatVersion makes this fixture a block-format package.
const DiskFormatVersion = 2

// wireTagged is gated correctly: directive present, version within
// the declared range, field count matching.
//
//wire:v1 fields=3
type wireTagged struct {
	A string
	B int64
	C []byte
}

// wireGrouped checks grouped declarations: the directive attaches to
// the TypeSpec's own doc.
type (
	//wire:v2 fields=2
	wireGrouped struct {
		X, Y int
	}
)

type wireUntagged struct { // want "wire struct wireUntagged has no //wire:v<N> fields=<M> directive"
	A string
}

// wireFuture is tagged with a format the package doesn't declare yet.
//
//wire:v3 fields=1
type wireFuture struct { // want "tagged //wire:v3 but the package declares DiskFormatVersion = 2"
	A string
}

// wireStale grew a field without its directive moving.
//
//wire:v1 fields=2
type wireStale struct { // want "declares fields=2 but has 3 fields"
	A string
	B int64
	C bool
}

// wireMultiName counts each declared name, like the codecs do.
//
//wire:v1 fields=4
type wireMultiName struct {
	A, B int
	C, D string
}

// wireAudited is muted by the audited-site escape hatch.
//
//lint:framegate scaffolding for a format still behind a flag
type wireAudited struct {
	A string
}

// notWire is out of scope: no wire name prefix, no directive.
type notWire struct {
	M map[int]int
}

// Record opts into the gate by directive despite its name — the
// columnar codecs serialize record structs field-by-field without a
// wire* mirror.
//
//wire:v1 fields=2
type Record struct {
	A string
	B int64
}

// StaleRecord is a directive-tagged record struct whose shape drifted.
//
//wire:v1 fields=1
type StaleRecord struct { // want "declares fields=1 but has 2 fields"
	A string
	B int64
}

// FutureRecord opted in with a format the package doesn't declare.
//
//wire:v9 fields=1
type FutureRecord struct { // want "tagged //wire:v9 but the package declares DiskFormatVersion = 2"
	A string
}

// wireAlias is not a struct, so the gate doesn't apply.
type wireAlias = wireTagged
