// Fixture for the cborwire analyzer: this package path is
// determinism-critical, so DAG-CBOR wire forms must not contain
// non-string-keyed Go maps (key-sorted pair slices per DESIGN.md §9;
// string-keyed maps are canonically sorted by the encoder and stay
// legal).
package sched

import "blueskies/internal/cbor"

type wireBad struct {
	Counts map[int]int
}

type pair struct{ K, V int }

type wireGood struct {
	Counts []pair
}

type inner struct{ M map[int64]bool }

type outer struct{ Items []inner }

func encodeBad(w wireBad) ([]byte, error) { return cbor.Marshal(w) } // want "field Counts"

func encodeMap(m map[int]string) []byte { return cbor.MustMarshal(m) } // want "cbor.MustMarshal of a wire form containing a non-string-keyed Go map"

func encodeNested(o outer) ([]byte, error) { return cbor.Marshal(o) } // want "field Items"

// encodeGood carries its pairs key-sorted: clean.
func encodeGood(w wireGood) ([]byte, error) { return cbor.Marshal(w) }

// encodeStringKeys is legal: the encoder canonically sorts string
// map keys, so the bytes are deterministic.
func encodeStringKeys(m map[string]int) []byte { return cbor.MustMarshal(m) }

// encodeNestedStringKeys is legal through a struct field too.
type wireLangs struct {
	ActiveByLang map[string]int
}

func encodeNestedStringKeys(w wireLangs) ([]byte, error) { return cbor.Marshal(w) }

// encodeAudited documents why a non-string-keyed map is acceptable
// here: clean.
func encodeAudited(m map[int]string) []byte {
	//lint:cborwire never crosses a machine boundary; debug dump only
	return cbor.MustMarshal(m)
}
