// Fixture for the shardcodec analyzer: a miniature of
// internal/analysis — the Accumulator interface, a registry
// (NewFullEngine), and implementations with sound, blanked, lazy,
// and unregistered shard codecs.
package analysis

type Shard interface{ Merge(Shard) }

type StateBounds struct{ URIs, Vals int }

type World struct{}

type Accumulator interface {
	NewShard(w *World) Shard
	MarshalShard(s Shard) ([]byte, error)
	UnmarshalShard(data []byte, b StateBounds) (Shard, error)
}

type goodShard struct{ IDs []int }

func (s *goodShard) Merge(Shard) {}

// goodAcc validates decoded ids against its bounds: clean.
type goodAcc struct{}

func newGoodAcc() Accumulator { return goodAcc{} }

func (goodAcc) NewShard(*World) Shard              { return &goodShard{} }
func (goodAcc) MarshalShard(Shard) ([]byte, error) { return nil, nil }
func (goodAcc) UnmarshalShard(data []byte, b StateBounds) (Shard, error) {
	if len(data) > b.URIs {
		return nil, nil
	}
	return &goodShard{}, nil
}

// blankAcc decodes no interned ids and blanks its bounds — the
// audited stateless form: clean.
type blankAcc struct{}

func newBlankAcc() Accumulator { return blankAcc{} }

func (blankAcc) NewShard(*World) Shard                             { return &goodShard{} }
func (blankAcc) MarshalShard(Shard) ([]byte, error)                { return nil, nil }
func (blankAcc) UnmarshalShard([]byte, StateBounds) (Shard, error) { return &goodShard{}, nil }

// lazyAcc promises validation in its signature and never performs it.
type lazyAcc struct{}

func newLazyAcc() Accumulator { return lazyAcc{} }

func (lazyAcc) NewShard(*World) Shard              { return &goodShard{} }
func (lazyAcc) MarshalShard(Shard) ([]byte, error) { return nil, nil }
func (lazyAcc) UnmarshalShard(data []byte, b StateBounds) (Shard, error) { // want "names its StateBounds parameter \"b\" but never validates"
	return &goodShard{}, nil
}

// strayAcc ships a codec no golden test ever folds through.
type strayAcc struct{} // want "strayAcc implements Accumulator but is not registered in NewFullEngine"

func (strayAcc) NewShard(*World) Shard                                    { return &goodShard{} }
func (strayAcc) MarshalShard(Shard) ([]byte, error)                       { return nil, nil }
func (strayAcc) UnmarshalShard(data []byte, _ StateBounds) (Shard, error) { return &goodShard{}, nil }

type Engine struct{ accs []Accumulator }

func NewEngine(accs ...Accumulator) *Engine { return &Engine{accs: accs} }

func NewFullEngine() *Engine {
	return NewEngine(newGoodAcc(), newBlankAcc(), newLazyAcc())
}
