// Stub of the repo's DAG-CBOR codec, just enough surface for the
// cborwire fixture to type-check against.
package cbor

func Marshal(v any) ([]byte, error) { return nil, nil }

func MustMarshal(v any) []byte { return nil }
