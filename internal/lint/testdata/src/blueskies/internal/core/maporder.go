// Fixture for the maporder analyzer: this package path is
// determinism-critical, so order-sensitive map iteration must be
// sorted or audited.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// collectUnsorted leaks map order into a returned slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to \"keys\" without a later sort"
	}
	return keys
}

// collectSorted is the canonical collect-then-sort idiom: clean.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectAudited documents that its caller sorts: clean.
func collectAudited(m map[string]int) []string {
	var keys []string
	//lint:ordered the only caller sorts before rendering
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// sum is a commutative fold: clean.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// leak sends map entries into a channel in iteration order.
func leak(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

// render commits bytes in iteration order; no later sort can repair
// the stream.
func render(m map[string]int, sb *strings.Builder) {
	for k, v := range m { // want "order-committing write"
		fmt.Fprintf(sb, "%s=%d\n", k, v)
	}
}

// perEntry appends only to a loop-local slice and writes into a
// keyed map: both order-insensitive, clean.
func perEntry(m map[string][]int, extra int) map[string]int {
	out := make(map[string]int)
	for k, vs := range m {
		var local []int
		local = append(local, vs...)
		local = append(local, extra)
		out[k] = len(local)
	}
	return out
}

// sliceRange is not a map iteration: clean.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
