// Fixture for the walltime analyzer: this package path is
// determinism-critical, so wall-clock reads and global math/rand are
// banned in favor of injected clocks and seeded generators.
package synth

import (
	"math/rand"
	"time"
)

type clocked struct {
	clock func() time.Time
}

// stamp uses the injected-Clock pattern: clean.
func stamp(c clocked) time.Time { return c.clock() }

func wall() time.Time { return time.Now() } // want "time.Now in determinism-critical"

func age(t time.Time) time.Duration { return time.Since(t) } // want "time.Since in determinism-critical"

func wait(deadline time.Time) time.Duration { return time.Until(deadline) } // want "time.Until in determinism-critical"

func draw() int { return rand.Intn(10) } // want "global math/rand.Intn in determinism-critical"

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle in determinism-critical"
}

// seeded draws from an explicit seeded source: clean.
func seeded(seed int64) int { return rand.New(rand.NewSource(seed)).Intn(10) }

// audited documents a genuine wall-clock need: clean.
func audited() time.Time {
	//lint:walltime live-network deadline; never feeds corpus bytes
	return time.Now()
}
