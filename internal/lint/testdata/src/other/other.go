// Fixture shared by every analyzer: this package is not
// determinism-critical and defines no Accumulator interface, so none
// of the patterns below may produce a diagnostic.
package other

import (
	"math/rand"
	"time"

	"blueskies/internal/cbor"
)

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func wall() time.Time { return time.Now() }

func draw() int { return rand.Intn(10) }

func encodeMap(m map[string]int) []byte { return cbor.MustMarshal(m) }
