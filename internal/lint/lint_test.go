package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestMapOrderFixture(t *testing.T) { runFixture(t, MapOrder, "blueskies/internal/core") }

func TestWallTimeFixture(t *testing.T) { runFixture(t, WallTime, "blueskies/internal/synth") }

func TestCBORWireFixture(t *testing.T) { runFixture(t, CBORWire, "blueskies/internal/sched") }

func TestShardCodecFixture(t *testing.T) { runFixture(t, ShardCodec, "blueskies/internal/analysis") }

func TestFrameGateFixture(t *testing.T) { runFixture(t, FrameGate, "framegate") }

func TestInternEscapeFixture(t *testing.T) { runFixture(t, InternEscape, "internescape") }

// TestNonCriticalPackageClean pins the scoping rule: the same
// patterns the analyzers flag in determinism-critical packages are
// legal everywhere else.
func TestNonCriticalPackageClean(t *testing.T) {
	for _, a := range Analyzers() {
		runFixture(t, a, "other")
	}
}

// TestVettoolProtocol builds cmd/bskylint and drives it through a
// real `go vet -vettool` run over this package, pinning the
// unitchecker protocol (-V=full, -flags, .cfg units) against the
// installed toolchain.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not found: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "bskylint")
	build := exec.Command(goTool, "build", "-o", bin, "blueskies/cmd/bskylint")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building bskylint: %v\n%s", err, out)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./internal/lint/")
	vet.Dir = moduleRoot(t)
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean package failed: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/lint → module root
}
