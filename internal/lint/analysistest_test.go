package lint

// A minimal analogue of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<import-path>/ and carry
// `// want "regexp"` comments on the lines where a diagnostic is
// expected (several regexps on one line mean several diagnostics).
// The harness type-checks the fixture with a recursive importer —
// sibling fixture packages first, the standard library compiled from
// source second — runs one analyzer, and diffs reported positions
// against the annotations both ways.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runFixture runs analyzer over the fixture package at
// testdata/src/<pkgPath> and checks diagnostics against its want
// annotations.
func runFixture(t *testing.T, analyzer *Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	im := &fixtureImporter{
		fset: fset,
		root: filepath.Join("testdata", "src"),
		pkgs: make(map[string]*fixturePkg),
		std:  importer.ForCompiler(fset, "source", nil),
	}
	fp, err := im.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var got []Diagnostic
	pass := &Pass{
		Analyzer:  analyzer,
		Fset:      fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
		Report:    func(d Diagnostic) { got = append(got, d) },
	}
	if err := analyzer.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", analyzer.Name, pkgPath, err)
	}

	wants := collectWants(t, fset, fp.files)
	for _, d := range got {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		if i := matchWant(wants[key], d.Message); i >= 0 {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
		} else {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, re := range wants[key] {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
		}
	}
}

func matchWant(res []*regexp.Regexp, msg string) int {
	for i, re := range res {
		if re.MatchString(msg) {
			return i
		}
	}
	return -1
}

// wantRE extracts the quoted regexps of a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants maps "file:line" to the expected-diagnostic regexps
// annotated on that line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureImporter type-checks fixture packages from testdata/src,
// memoizing results, and defers everything else to the stdlib source
// importer. All fixture packages in one run share a types.Info so a
// stub package's objects resolve across fixture boundaries.
type fixtureImporter struct {
	fset *token.FileSet
	root string
	pkgs map[string]*fixturePkg
	std  types.Importer
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		fp, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return im.std.Import(path)
}

func (im *fixtureImporter) load(path string) (*fixturePkg, error) {
	if fp, ok := im.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	info := newTypesInfo()
	tc := &types.Config{Importer: im}
	pkg, err := tc.Check(path, im.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	im.pkgs[path] = fp
	return fp, nil
}
