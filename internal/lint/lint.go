// Package lint is the repo's static-analysis layer: a minimal
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the `go vet -vettool` unitchecker
// driver protocol, built — like the rest of blueskies — on the
// standard library alone.
//
// The analyzers machine-check the determinism invariants every
// scaling layer rests on (DESIGN.md §10): byte-identical output
// across worker counts, partitions, disk spills, and remote
// schedules. Golden/parity tests enforce those invariants after the
// fact; the analyzers enforce them at vet time, before code lands.
//
//	maporder   — no order-sensitive iteration over Go maps in
//	             determinism-critical packages without a sort or an
//	             audited //lint:ordered comment.
//	walltime   — no wall-clock (time.Now/Since/Until) or unseeded
//	             math/rand in determinism-critical packages; sim and
//	             protocol code injects a Clock instead.
//	cborwire   — no Go map reachable from a value handed to the
//	             DAG-CBOR encoder in determinism-critical packages;
//	             wire structs carry key-sorted pair slices (§9).
//	shardcodec — every analysis.Accumulator implementation has a
//	             sound MarshalShard/UnmarshalShard pair: the decoder
//	             uses (or explicitly blanks) its StateBounds, and the
//	             type is registered in NewFullEngine, the registry the
//	             codec round-trip golden test folds through.
//	framegate  — every wire struct in a block-format package (one
//	             declaring DiskFormatVersion) carries a current
//	             //wire:v<N> fields=<M> directive — wire*-named
//	             structs and any struct tagged with a directive (the
//	             columnar codecs serialize record structs without
//	             wire* mirrors) — so wire-shape changes can't land
//	             without confronting the format version and decode
//	             dispatch that gate them (§11).
//	internescape — no store may retain a *LabelChunk or alias its
//	             Meta/Labels slices past the Shard.Labels call: the
//	             buffers are reused per block and their interned ids
//	             are only valid until MergeCtx remaps them into the
//	             global id space. Copy elements; ids are plain ints.
//
// Suppression: a site the team has audited carries a
// `//lint:<name> <justification>` comment on its own line or the line
// above (maporder's directive is //lint:ordered). The justification
// is mandatory by convention — a bare directive reads as an unaudited
// mute and should be rejected in review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: its name, what it checks, and
// the function that runs it on a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string
}

// A Pass carries one analyzer's view of one type-checked package.
// The driver (unitchecker or test harness) populates every field.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	lineComments map[string]map[int][]string // filename → line → comment texts
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, End: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full blueskies analyzer suite in stable
// order. cmd/bskylint registers exactly this set.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallTime, CBORWire, ShardCodec, FrameGate, InternEscape}
}

// criticalPackages are the packages whose output must be byte-
// identical across worker counts, partitions, spills, and remote
// schedules (DESIGN.md §10). The determinism analyzers fire only
// here; protocol/sim packages are governed by their injected-Clock
// convention instead.
var criticalPackages = map[string]bool{
	"blueskies/internal/core":     true,
	"blueskies/internal/synth":    true,
	"blueskies/internal/analysis": true,
	"blueskies/internal/sched":    true,
}

// Critical reports whether pkgPath is determinism-critical.
func Critical(pkgPath string) bool { return criticalPackages[pkgPath] }

// testFile reports whether the file containing pos is a _test.go
// file. Test code measures and mocks wall time and iterates maps for
// assertions; the determinism invariants bind only the shipped path.
func (p *Pass) testFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// Suppressed reports whether the line at pos, or the line above it,
// carries a `//lint:<directive>` comment — the audited-site escape
// hatch. Directive matching requires the comment to start with the
// directive and continue only with a justification (whitespace-
// separated), so //lint:ordered does not also mute //lint:orderedX.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	if p.lineComments == nil {
		p.lineComments = make(map[string]map[int][]string)
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			if tf == nil {
				continue
			}
			lines := make(map[int][]string)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					line := p.Fset.Position(c.Pos()).Line
					lines[line] = append(lines[line], c.Text)
				}
			}
			p.lineComments[tf.Name()] = lines
		}
	}
	posn := p.Fset.Position(pos)
	lines := p.lineComments[posn.Filename]
	want := "//lint:" + directive
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, text := range lines[line] {
			if text == want || strings.HasPrefix(text, want+" ") || strings.HasPrefix(text, want+"\t") {
				return true
			}
		}
	}
	return false
}

// funcFor resolves a call expression to the package-level or imported
// function it invokes, or nil for method calls, conversions, and
// builtins.
func (p *Pass) funcFor(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return nil // method call (e.g. a seeded *rand.Rand), not a package function
		}
	}
	return fn
}

// pathOf returns the import path of fn's defining package ("" for
// builtins and universe-scope functions).
func pathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
