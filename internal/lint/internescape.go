package lint

import (
	"go/ast"
	"go/types"
)

// InternEscape flags label-chunk aliases that outlive the Shard.Labels
// call. A LabelChunk and its Meta/Labels slices are per-block buffers:
// batch workers reuse the Meta slice for the next block, and the
// interned ids inside it are local to the feeding worker's tables —
// MergeCtx remaps them when shards fold, so a raw id held past the
// call points into the wrong table after the remap. Accumulators must
// copy the elements they keep (ids are plain ints; copying them is
// the point — see LabelChunk's doc in internal/analysis).
//
// The analyzer keys on the package defining a LabelChunk struct with
// Meta and Labels fields (internal/analysis and its fixtures; inert
// everywhere else) and flags stores into field selectors, map keys,
// or slice elements whose value aliases chunk memory: the chunk
// pointer itself, a chunk value copy (its slices still alias), or a
// Meta/Labels slice — including reslicings like c.Meta[:n]. Element
// reads (c.Meta[i]), spread appends (append(dst, c.Meta...)), and
// local variables are all fine: they either copy or die with the
// call. This is a direct-store check, not an escape analysis — an
// alias laundered through a local then stored is not caught.
var InternEscape = &Analyzer{
	Name: "internescape",
	Doc: "flag stores that retain a *LabelChunk or alias its Meta/Labels slices beyond the " +
		"Shard.Labels call; the buffers are reused per block and their interned ids are only " +
		"valid until MergeCtx remaps them — copy elements instead",
	Run: runInternEscape,
}

func runInternEscape(pass *Pass) error {
	chunk := labelChunkType(pass.Pkg)
	if chunk == nil {
		return nil // not a label-engine package
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, chunk, n)
			case *ast.CompositeLit:
				checkComposite(pass, chunk, n)
			}
			return true
		})
	}
	return nil
}

// labelChunkType returns the package-scope LabelChunk struct type if
// it carries Meta and Labels fields, else nil. The field requirement
// keeps an unrelated type of the same name from arming the analyzer.
func labelChunkType(pkg *types.Package) *types.Named {
	tn, ok := pkg.Scope().Lookup("LabelChunk").(*types.TypeName)
	if !ok || tn.IsAlias() {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	hasMeta, hasLabels := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Meta":
			hasMeta = true
		case "Labels":
			hasLabels = true
		}
	}
	if !hasMeta || !hasLabels {
		return nil
	}
	return named
}

// checkAssign flags escaping stores: an assignment whose destination
// is a field selector or an index expression (both outlive the frame)
// and whose source aliases chunk memory. Plain `x := ...` locals are
// out of scope — they die with the call.
func checkAssign(pass *Pass, chunk *types.Named, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // tuple-from-call form; a call result is not a chunk alias
	}
	for i, lhs := range as.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue
		}
		reportAlias(pass, chunk, as.Rhs[i])
	}
}

// checkComposite flags chunk aliases captured into composite literals
// (`state{meta: c.Meta}`) — the literal is usually on its way into a
// longer-lived structure.
func checkComposite(pass *Pass, chunk *types.Named, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		reportAlias(pass, chunk, elt)
	}
}

// reportAlias reports e when it aliases chunk memory and the site is
// not test code or audited.
func reportAlias(pass *Pass, chunk *types.Named, e ast.Expr) {
	what, ok := chunkAlias(pass, chunk, e)
	if !ok || pass.testFile(e.Pos()) || pass.Suppressed(e.Pos(), "internescape") {
		return
	}
	pass.Reportf(e.Pos(), "%s aliases a per-block label chunk beyond the Labels call: the Meta buffer is reused for the next block and its interned ids are remapped at merge (MergeCtx); copy the elements you keep, or audit with //lint:internescape", what)
}

// chunkAlias reports whether e aliases chunk memory: the chunk
// pointer or a value copy of it (reference form only — fresh
// composite literals and call results are new memory the writer
// owns), or one of its Meta/Labels slices, possibly resliced.
func chunkAlias(pass *Pass, chunk *types.Named, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch ref := e.(type) {
	case *ast.Ident, *ast.StarExpr:
		if isChunkType(pass.TypesInfo.TypeOf(e), chunk) {
			return "storing " + exprString(e), true
		}
		return "", false
	case *ast.UnaryExpr:
		// &existing aliases; &LabelChunk{...} is fresh memory the
		// writer owns (its captured elements are checked separately).
		if _, fresh := ast.Unparen(ref.X).(*ast.CompositeLit); !fresh && isChunkType(pass.TypesInfo.TypeOf(e), chunk) {
			return "storing " + exprString(e), true
		}
		return "", false
	case *ast.SliceExpr:
		e = ast.Unparen(ref.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Meta" && sel.Sel.Name != "Labels" {
		// c.Field where c is a chunk: Meta/Labels alias the shared
		// buffers; other fields are scalars and copy.
		if isChunkType(pass.TypesInfo.TypeOf(sel), chunk) {
			return "storing " + exprString(sel), true
		}
		return "", false
	}
	if !isChunkType(pass.TypesInfo.TypeOf(sel.X), chunk) {
		return "", false
	}
	return "storing " + exprString(sel.X) + "." + sel.Sel.Name, true
}

// isChunkType reports whether t is the LabelChunk type or a pointer
// to it.
func isChunkType(t types.Type, chunk *types.Named) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == chunk.Obj()
}

// exprString renders a short reference expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return "expression"
	}
}
