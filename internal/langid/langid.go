// Package langid is a lightweight language identifier standing in for
// the langdetect library the paper used to classify Feed Generator
// descriptions (§7) and to verify post language tags (§4).
//
// Classification combines Unicode script detection (Japanese and
// Korean are script-identified) with stopword scoring for the Latin
// languages the paper charts: English, German, Portuguese, French,
// Spanish, and Dutch.
package langid

import (
	"strings"
	"unicode"
)

// Lang is an ISO-639-1 language code.
type Lang string

// Languages the classifier can report, matching the paper's Figure 2.
const (
	English    Lang = "en"
	Japanese   Lang = "ja"
	German     Lang = "de"
	Portuguese Lang = "pt"
	Korean     Lang = "ko"
	French     Lang = "fr"
	Spanish    Lang = "es"
	Dutch      Lang = "nl"
	Unknown    Lang = "und"
)

// stopwords maps each Latin-script language to high-frequency words.
var stopwords = map[Lang][]string{
	English:    {"the", "and", "for", "with", "this", "that", "you", "are", "from", "have", "all", "new", "posts", "feed", "about", "your", "what", "not"},
	German:     {"der", "die", "das", "und", "ist", "nicht", "mit", "ein", "eine", "für", "auf", "von", "sie", "ich", "aus", "dem", "auch", "wir"},
	Portuguese: {"que", "não", "uma", "para", "com", "por", "mais", "como", "dos", "você", "isso", "muito", "aqui", "tudo", "meu", "sua", "ele", "são"},
	French:     {"les", "des", "est", "pas", "vous", "une", "sur", "avec", "pour", "qui", "dans", "mais", "tout", "ce", "je", "au", "du", "mes"},
	Spanish:    {"que", "los", "las", "una", "por", "con", "para", "del", "está", "pero", "como", "más", "este", "todo", "ser", "son", "mi", "muy"},
	Dutch:      {"het", "een", "van", "dat", "niet", "zijn", "voor", "met", "maar", "ook", "aan", "bij", "naar", "dan", "nog", "wel", "ik", "je"},
}

var stopwordIndex = func() map[string]map[Lang]bool {
	idx := make(map[string]map[Lang]bool)
	for lang, words := range stopwords {
		for _, w := range words {
			if idx[w] == nil {
				idx[w] = make(map[Lang]bool)
			}
			idx[w][lang] = true
		}
	}
	return idx
}()

// Detect classifies text, returning Unknown when no signal is strong
// enough.
func Detect(text string) Lang {
	if lang := detectScript(text); lang != Unknown {
		return lang
	}
	scores := map[Lang]int{}
	words := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && r != '\''
	})
	total := 0
	for _, w := range words {
		if langs, ok := stopwordIndex[w]; ok {
			for lang := range langs {
				scores[lang]++
			}
			total++
		}
	}
	if total == 0 {
		return Unknown
	}
	best, bestScore, secondScore := Unknown, 0, 0
	// Iterate deterministically for stable tie-breaking.
	for _, lang := range []Lang{English, German, Portuguese, French, Spanish, Dutch} {
		if s := scores[lang]; s > bestScore {
			best, secondScore, bestScore = lang, bestScore, s
		} else if s > secondScore {
			secondScore = s
		}
	}
	// Require a clear margin: ties between Romance languages are
	// common on short text.
	if bestScore == 0 || bestScore == secondScore {
		return Unknown
	}
	return best
}

// detectScript identifies script-distinct languages by rune classes.
func detectScript(text string) Lang {
	var ja, ko, latin, total int
	for _, r := range text {
		if unicode.IsSpace(r) || unicode.IsPunct(r) || unicode.IsDigit(r) {
			continue
		}
		total++
		switch {
		case unicode.In(r, unicode.Hiragana, unicode.Katakana):
			ja++
		case unicode.In(r, unicode.Hangul):
			ko++
		case unicode.In(r, unicode.Han):
			// Han alone is ambiguous (Chinese/Japanese); lean Japanese
			// only when kana are also present, so count separately.
		case unicode.In(r, unicode.Latin):
			latin++
		}
	}
	if total == 0 {
		return Unknown
	}
	switch {
	case ja*5 >= total: // ≥20 % kana → Japanese
		return Japanese
	case ko*5 >= total:
		return Korean
	}
	_ = latin
	return Unknown
}

// DetectTagged returns the self-assigned tag when present and
// otherwise falls back to detection — mirroring how the paper uses
// post language tags but verifies a sample by content.
func DetectTagged(tag, text string) Lang {
	if tag != "" {
		return Lang(tag)
	}
	return Detect(text)
}
