package langid

import "testing"

func TestDetectScriptLanguages(t *testing.T) {
	cases := []struct {
		text string
		want Lang
	}{
		{"今日はラーメンを食べました。とても美味しかったです", Japanese},
		{"안녕하세요 오늘 날씨가 좋네요", Korean},
	}
	for _, tc := range cases {
		if got := Detect(tc.text); got != tc.want {
			t.Errorf("Detect(%q) = %q, want %q", tc.text, got, tc.want)
		}
	}
}

func TestDetectLatinLanguages(t *testing.T) {
	cases := []struct {
		text string
		want Lang
	}{
		{"the best feed for all the new posts about art and this community", English},
		{"die besten Posts für die Community und das ist nicht alles", German},
		{"uma feed para você com tudo isso que não pode perder aqui", Portuguese},
		{"les meilleurs posts pour vous avec tout ce qui est dans le feed", French},
	}
	for _, tc := range cases {
		if got := Detect(tc.text); got != tc.want {
			t.Errorf("Detect(%q) = %q, want %q", tc.text, got, tc.want)
		}
	}
}

func TestDetectUnknown(t *testing.T) {
	for _, text := range []string{"", "12345 !!!", "xkcd qwerty zxcvb"} {
		if got := Detect(text); got != Unknown {
			t.Errorf("Detect(%q) = %q, want unknown", text, got)
		}
	}
}

func TestDetectTagged(t *testing.T) {
	if got := DetectTagged("ja", "anything"); got != Japanese {
		t.Fatalf("tag must win: %q", got)
	}
	if got := DetectTagged("", "the new posts for the feed and all that"); got != English {
		t.Fatalf("fallback detect: %q", got)
	}
}

func TestMixedScriptPrefersKana(t *testing.T) {
	// Japanese posts often mix Latin hashtags with kana text.
	text := "ラーメン最高です #ramen #food"
	if got := Detect(text); got != Japanese {
		t.Fatalf("Detect(%q) = %q", text, got)
	}
}
