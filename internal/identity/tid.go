package identity

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// TID is a timestamp identifier: the 13-character, base32-sortable
// record key format used for atproto records (e.g. 3kdgeujwlq32y).
// A TID encodes 53 bits of microseconds since the Unix epoch and a
// 10-bit clock identifier, so lexicographic order equals time order.
type TID string

const tidAlphabet = "234567abcdefghijklmnopqrstuvwxyz"

var tidReverse = func() [256]int8 {
	var t [256]int8
	for i := range t {
		t[i] = -1
	}
	for i := 0; i < len(tidAlphabet); i++ {
		t[tidAlphabet[i]] = int8(i)
	}
	return t
}()

// NewTID builds a TID from a timestamp and a clock ID (0–1023).
func NewTID(ts time.Time, clockID uint16) TID {
	micros := uint64(ts.UnixMicro()) & ((1 << 53) - 1)
	v := micros<<10 | uint64(clockID&0x3ff)
	var b [13]byte
	for i := 12; i >= 0; i-- {
		b[i] = tidAlphabet[v&0x1f]
		v >>= 5
	}
	return TID(b[:])
}

// ParseTID validates a TID string.
func ParseTID(s string) (TID, error) {
	if len(s) != 13 {
		return "", fmt.Errorf("identity: TID must be 13 chars, got %d", len(s))
	}
	for i := 0; i < len(s); i++ {
		if tidReverse[s[i]] < 0 {
			return "", fmt.Errorf("identity: invalid TID char %q", s[i])
		}
	}
	// The top bit must be zero (53-bit microsecond range).
	if tidReverse[s[0]] >= 16 {
		return "", fmt.Errorf("identity: TID high bit set: %q", s)
	}
	return TID(s), nil
}

// Time recovers the timestamp encoded in the TID.
func (t TID) Time() time.Time {
	var v uint64
	for i := 0; i < len(t); i++ {
		v = v<<5 | uint64(tidReverse[t[i]])
	}
	return time.UnixMicro(int64(v >> 10)).UTC()
}

// ClockID recovers the clock identifier encoded in the TID.
func (t TID) ClockID() uint16 {
	var v uint64
	for i := 0; i < len(t); i++ {
		v = v<<5 | uint64(tidReverse[t[i]])
	}
	return uint16(v & 0x3ff)
}

// String returns the textual TID.
func (t TID) String() string { return string(t) }

// Less orders TIDs; because the encoding is base32-sortable this is
// plain string comparison.
func (t TID) Less(o TID) bool { return strings.Compare(string(t), string(o)) < 0 }

// TIDClock issues strictly monotonic TIDs even when the underlying
// clock is coarse or rewinds; safe for concurrent use.
type TIDClock struct {
	mu      sync.Mutex
	clockID uint16
	last    uint64 // last issued microsecond value
}

// NewTIDClock creates a clock with the given 10-bit clock identifier.
func NewTIDClock(clockID uint16) *TIDClock {
	return &TIDClock{clockID: clockID & 0x3ff}
}

// Next issues a TID for the given timestamp, bumping by one microsecond
// whenever the timestamp would not be strictly greater than the last.
func (c *TIDClock) Next(ts time.Time) TID {
	c.mu.Lock()
	defer c.mu.Unlock()
	micros := uint64(ts.UnixMicro())
	if micros <= c.last {
		micros = c.last + 1
	}
	c.last = micros
	return NewTID(time.UnixMicro(int64(micros)), c.clockID)
}
