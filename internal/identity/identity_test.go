package identity

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseDIDPLC(t *testing.T) {
	d, err := ParseDID("did:plc:ewvi7nxzyoun6zhxrhs64oiz")
	if err != nil {
		t.Fatal(err)
	}
	if d.Method() != MethodPLC {
		t.Fatalf("method = %q", d.Method())
	}
	if d.Suffix() != "ewvi7nxzyoun6zhxrhs64oiz" {
		t.Fatalf("suffix = %q", d.Suffix())
	}
}

func TestParseDIDWeb(t *testing.T) {
	d, err := ParseDID("did:web:example.com")
	if err != nil {
		t.Fatal(err)
	}
	if d.Method() != MethodWeb {
		t.Fatalf("method = %q", d.Method())
	}
}

func TestParseDIDErrors(t *testing.T) {
	bad := []string{
		"",
		"did:plc:",
		"did:plc:SHOUTING24CHARSAAAAAAAAA",
		"did:plc:short",
		"did:web:nodots",
		"did:key:z6Mk",
		"plc:abcdefghijklmnopqrstuvwx",
	}
	for _, s := range bad {
		if _, err := ParseDID(s); err == nil {
			t.Errorf("ParseDID(%q): expected error", s)
		}
	}
}

func TestPLCFromGenesisShape(t *testing.T) {
	d := PLCFromGenesis([]byte("genesis operation bytes"))
	if _, err := ParseDID(string(d)); err != nil {
		t.Fatalf("derived DID invalid: %v", err)
	}
	if d2 := PLCFromGenesis([]byte("genesis operation bytes")); d2 != d {
		t.Fatal("derivation not deterministic")
	}
	if d3 := PLCFromGenesis([]byte("other")); d3 == d {
		t.Fatal("different genesis produced same DID")
	}
}

func TestHandleValidation(t *testing.T) {
	good := []string{"alice.bsky.social", "example.com", "a-b.example.co.uk", "x1.y2.z3"}
	for _, h := range good {
		if err := ValidateHandle(h); err != nil {
			t.Errorf("ValidateHandle(%q): %v", h, err)
		}
	}
	bad := []string{"", "nolabels", ".example.com", "ex..com", "-bad.example.com",
		"bad-.example.com", strings.Repeat("a", 64) + ".com", "under_score.com"}
	for _, h := range bad {
		if err := ValidateHandle(h); err == nil {
			t.Errorf("ValidateHandle(%q): expected error", h)
		}
	}
}

func TestHandleNormalization(t *testing.T) {
	h, err := ParseHandle("Alice.BSKY.Social")
	if err != nil {
		t.Fatal(err)
	}
	if h != "alice.bsky.social" {
		t.Fatalf("handle = %q", h)
	}
	if h.Domain() != "bsky.social" {
		t.Fatalf("domain = %q", h.Domain())
	}
	if h.TXTRecordName() != "_atproto.alice.bsky.social" {
		t.Fatalf("txt name = %q", h.TXTRecordName())
	}
}

func TestURIRoundTrip(t *testing.T) {
	s := "at://did:plc:ewvi7nxzyoun6zhxrhs64oiz/app.bsky.feed.post/3kdgeujwlq32y"
	u, err := ParseURI(s)
	if err != nil {
		t.Fatal(err)
	}
	if u.Collection != "app.bsky.feed.post" || u.RKey != "3kdgeujwlq32y" {
		t.Fatalf("parsed %+v", u)
	}
	if u.String() != s {
		t.Fatalf("round trip: %q", u.String())
	}
	if u.RepoPath() != "app.bsky.feed.post/3kdgeujwlq32y" {
		t.Fatalf("repo path: %q", u.RepoPath())
	}
}

func TestURIErrors(t *testing.T) {
	bad := []string{
		"http://example.com",
		"at://did:plc:ewvi7nxzyoun6zhxrhs64oiz",
		"at://did:plc:ewvi7nxzyoun6zhxrhs64oiz/coll",
		"at://did:plc:ewvi7nxzyoun6zhxrhs64oiz//rkey",
		"at://notadid/coll/rkey",
	}
	for _, s := range bad {
		if _, err := ParseURI(s); err == nil {
			t.Errorf("ParseURI(%q): expected error", s)
		}
	}
}

func TestDocumentAccessors(t *testing.T) {
	kp := DeriveKeyPair("alice")
	doc := Document{ID: "did:plc:abcdefghijklmnopqrstuvwx"}
	doc.SetHandle("alice.bsky.social")
	doc.SetService(ServiceIDPDS, ServiceTypePDS, "http://pds.example")
	doc.VerificationMethod = []VerificationMethod{kp.VerificationMethod(doc.ID)}

	if doc.Handle() != "alice.bsky.social" {
		t.Fatalf("handle = %q", doc.Handle())
	}
	if doc.PDSEndpoint() != "http://pds.example" {
		t.Fatalf("pds = %q", doc.PDSEndpoint())
	}
	if doc.LabelerEndpoint() != "" {
		t.Fatalf("unexpected labeler endpoint")
	}

	doc.SetHandle("alice.example.com")
	if doc.Handle() != "alice.example.com" {
		t.Fatalf("handle after update = %q", doc.Handle())
	}
	if len(doc.AlsoKnownAs) != 1 {
		t.Fatalf("SetHandle must replace, got %v", doc.AlsoKnownAs)
	}

	doc.SetService(ServiceIDPDS, ServiceTypePDS, "http://pds2.example")
	if doc.PDSEndpoint() != "http://pds2.example" || len(doc.Service) != 1 {
		t.Fatalf("SetService must replace, got %v", doc.Service)
	}

	pub, err := doc.SigningKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("commit bytes")
	if !Verify(pub, msg, kp.Sign(msg)) {
		t.Fatal("signature did not verify")
	}
}

func TestKeyPairDeterminism(t *testing.T) {
	a := DeriveKeyPair("label")
	b := DeriveKeyPair("label")
	if a.PublicMultibase() != b.PublicMultibase() {
		t.Fatal("DeriveKeyPair not deterministic")
	}
	c := DeriveKeyPair("other")
	if a.PublicMultibase() == c.PublicMultibase() {
		t.Fatal("distinct labels produced same key")
	}
}

func TestMultibaseKeyRoundTrip(t *testing.T) {
	kp := DeriveKeyPair("mb")
	enc := kp.PublicMultibase()
	pub, err := DecodePublicKeyMultibase(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(kp.Public()) {
		t.Fatal("multibase round trip mismatch")
	}
	if _, err := DecodePublicKeyMultibase("not-multibase"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTIDRoundTrip(t *testing.T) {
	ts := time.Date(2024, 4, 24, 12, 30, 45, 123456000, time.UTC)
	tid := NewTID(ts, 7)
	if len(tid) != 13 {
		t.Fatalf("TID length %d", len(tid))
	}
	if _, err := ParseTID(string(tid)); err != nil {
		t.Fatal(err)
	}
	if !tid.Time().Equal(ts) {
		t.Fatalf("time round trip: %v vs %v", tid.Time(), ts)
	}
	if tid.ClockID() != 7 {
		t.Fatalf("clock id = %d", tid.ClockID())
	}
}

func TestTIDSortableByTime(t *testing.T) {
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	prev := NewTID(base, 0)
	for i := 1; i < 1000; i++ {
		next := NewTID(base.Add(time.Duration(i)*time.Millisecond), 0)
		if !prev.Less(next) {
			t.Fatalf("TIDs not sorted at step %d: %s >= %s", i, prev, next)
		}
		prev = next
	}
}

func TestTIDQuickOrdering(t *testing.T) {
	f := func(a, b uint32) bool {
		ta := time.Unix(int64(a), 0)
		tb := time.Unix(int64(b), 0)
		tidA, tidB := NewTID(ta, 1), NewTID(tb, 1)
		switch {
		case a < b:
			return tidA.Less(tidB)
		case a > b:
			return tidB.Less(tidA)
		default:
			return tidA == tidB
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTIDClockMonotonic(t *testing.T) {
	clock := NewTIDClock(3)
	same := time.Date(2024, 3, 6, 0, 0, 0, 0, time.UTC)
	prev := clock.Next(same)
	for i := 0; i < 100; i++ {
		next := clock.Next(same) // identical timestamp every call
		if !prev.Less(next) {
			t.Fatalf("clock not monotonic: %s then %s", prev, next)
		}
		prev = next
	}
	// A rewound wall clock must still move forward.
	rewound := clock.Next(same.Add(-time.Hour))
	if !prev.Less(rewound) {
		t.Fatalf("clock went backwards: %s then %s", prev, rewound)
	}
}

func TestParseTIDErrors(t *testing.T) {
	for _, s := range []string{"", "short", "3kdgeujwlq32y9", "3kdgeujwlq32!", "zzzzzzzzzzzzz"} {
		if _, err := ParseTID(s); err == nil {
			t.Errorf("ParseTID(%q): expected error", s)
		}
	}
}
