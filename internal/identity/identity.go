// Package identity implements AT Protocol identity primitives:
// decentralized identifiers (did:plc and did:web), user handles,
// at:// record URIs, TID record keys, DID documents, and the signing
// keys referenced from DID documents.
//
// The paper (§2) describes these as the foundation of Bluesky's
// account portability: the DID is the immutable identifier, the handle
// is a mutable DNS name proving domain ownership, and the DID document
// binds the two together along with the user's PDS endpoint and keys.
//
// Substitution note: atproto signs with secp256k1 keys; the Go standard
// library provides ed25519, which fills the same role (commit and
// operation authenticity) here.
package identity

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/base32"
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// Method is a DID method understood by the network.
type Method string

// Supported DID methods (§2, "Decentralized Identities").
const (
	MethodPLC Method = "plc"
	MethodWeb Method = "web"
)

// base32Sortable is the lowercase base32 alphabet used by PLC
// identifiers and TIDs.
var base32Sortable = base32.NewEncoding("abcdefghijklmnopqrstuvwxyz234567").WithPadding(base32.NoPadding)

// DID is a decentralized identifier such as
// did:plc:ewvi7nxzyoun6zhxrhs64oiz or did:web:example.com.
type DID string

var plcSuffixRe = regexp.MustCompile(`^[a-z2-7]{24}$`)

// ParseDID validates the textual form of a DID.
func ParseDID(s string) (DID, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 || parts[0] != "did" {
		return "", fmt.Errorf("identity: malformed DID %q", s)
	}
	switch Method(parts[1]) {
	case MethodPLC:
		if !plcSuffixRe.MatchString(parts[2]) {
			return "", fmt.Errorf("identity: malformed did:plc suffix %q", parts[2])
		}
	case MethodWeb:
		if err := ValidateHandle(parts[2]); err != nil {
			return "", fmt.Errorf("identity: did:web requires a FQDN: %w", err)
		}
	default:
		return "", fmt.Errorf("identity: unsupported DID method %q", parts[1])
	}
	return DID(s), nil
}

// Method returns the DID method, or "" if the DID is malformed.
func (d DID) Method() Method {
	parts := strings.SplitN(string(d), ":", 3)
	if len(parts) != 3 {
		return ""
	}
	return Method(parts[1])
}

// Suffix returns the method-specific identifier portion.
func (d DID) Suffix() string {
	parts := strings.SplitN(string(d), ":", 3)
	if len(parts) != 3 {
		return ""
	}
	return parts[2]
}

// String returns the textual DID.
func (d DID) String() string { return string(d) }

// PLCFromGenesis derives a did:plc identifier from the DAG-CBOR bytes
// of the genesis PLC operation: the first 24 base32 characters of the
// sha2-256 digest, as specified by the did:plc method.
func PLCFromGenesis(genesisOp []byte) DID {
	sum := sha256.Sum256(genesisOp)
	enc := base32Sortable.EncodeToString(sum[:])
	return DID("did:plc:" + enc[:24])
}

// WebDID constructs a did:web identifier from a fully qualified domain
// name.
func WebDID(fqdn string) (DID, error) {
	if err := ValidateHandle(fqdn); err != nil {
		return "", err
	}
	return DID("did:web:" + fqdn), nil
}

// Handle is a user handle: a fully qualified domain name such as
// alice.bsky.social or example.com.
type Handle string

var handleLabelRe = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]*[a-z0-9])?$`)

// ValidateHandle checks that s is a plausible FQDN handle: at least two
// dot-separated labels of letters, digits and inner hyphens, total
// length ≤ 253.
func ValidateHandle(s string) error {
	if len(s) == 0 || len(s) > 253 {
		return fmt.Errorf("identity: handle length %d out of range", len(s))
	}
	labels := strings.Split(strings.ToLower(s), ".")
	if len(labels) < 2 {
		return fmt.Errorf("identity: handle %q needs at least two labels", s)
	}
	for _, l := range labels {
		if len(l) == 0 || len(l) > 63 {
			return fmt.Errorf("identity: handle label %q length out of range", l)
		}
		if !handleLabelRe.MatchString(l) {
			return fmt.Errorf("identity: invalid handle label %q", l)
		}
	}
	return nil
}

// ParseHandle validates and normalizes (lowercases) a handle.
func ParseHandle(s string) (Handle, error) {
	if err := ValidateHandle(s); err != nil {
		return "", err
	}
	return Handle(strings.ToLower(s)), nil
}

// String returns the textual handle.
func (h Handle) String() string { return string(h) }

// Domain returns the parent domain of the handle (everything after the
// first label), e.g. "bsky.social" for "alice.bsky.social".
func (h Handle) Domain() string {
	if i := strings.IndexByte(string(h), '.'); i >= 0 {
		return string(h)[i+1:]
	}
	return string(h)
}

// TXTRecordName returns the DNS name holding the handle's ownership
// proof: _atproto.<handle>.
func (h Handle) TXTRecordName() string { return "_atproto." + string(h) }

// WellKnownPath is the HTTPS path of the alternative ownership proof.
const WellKnownPath = "/.well-known/atproto-did"

// DIDDocPath is the did:web document location.
const DIDDocPath = "/.well-known/did.json"

// URI is an at:// URI identifying a record:
// at://<did>/<collection>/<rkey>.
type URI struct {
	DID        DID
	Collection string
	RKey       string
}

// ParseURI parses an at:// URI.
func ParseURI(s string) (URI, error) {
	const scheme = "at://"
	if !strings.HasPrefix(s, scheme) {
		return URI{}, fmt.Errorf("identity: not an at:// URI: %q", s)
	}
	rest := s[len(scheme):]
	parts := strings.Split(rest, "/")
	if len(parts) != 3 {
		return URI{}, fmt.Errorf("identity: at:// URI needs did/collection/rkey: %q", s)
	}
	did, err := ParseDID(parts[0])
	if err != nil {
		return URI{}, err
	}
	if parts[1] == "" || parts[2] == "" {
		return URI{}, fmt.Errorf("identity: empty collection or rkey in %q", s)
	}
	return URI{DID: did, Collection: parts[1], RKey: parts[2]}, nil
}

// String renders the at:// form.
func (u URI) String() string {
	return "at://" + string(u.DID) + "/" + u.Collection + "/" + u.RKey
}

// RepoPath returns the repository key "collection/rkey".
func (u URI) RepoPath() string { return u.Collection + "/" + u.RKey }

// ServiceEndpoint describes one service entry in a DID document.
type ServiceEndpoint struct {
	ID       string `cbor:"id" json:"id"`
	Type     string `cbor:"type" json:"type"`
	Endpoint string `cbor:"serviceEndpoint" json:"serviceEndpoint"`
}

// Well-known service IDs used by atproto DID documents.
const (
	ServiceIDPDS     = "#atproto_pds"
	ServiceIDLabeler = "#atproto_labeler"
	ServiceTypePDS   = "AtprotoPersonalDataServer"
	ServiceTypeLabel = "AtprotoLabeler"
)

// VerificationMethod holds a public signing key in a DID document.
type VerificationMethod struct {
	ID                 string `cbor:"id" json:"id"`
	Type               string `cbor:"type" json:"type"`
	Controller         string `cbor:"controller" json:"controller"`
	PublicKeyMultibase string `cbor:"publicKeyMultibase" json:"publicKeyMultibase"`
}

// Document is a DID document: the service record binding a DID to its
// handle, PDS endpoint, and signing keys (§2).
type Document struct {
	ID                 DID                  `cbor:"id" json:"id"`
	AlsoKnownAs        []string             `cbor:"alsoKnownAs" json:"alsoKnownAs"`
	VerificationMethod []VerificationMethod `cbor:"verificationMethod" json:"verificationMethod"`
	Service            []ServiceEndpoint    `cbor:"service" json:"service"`
}

// Handle extracts the primary handle from alsoKnownAs ("at://<handle>"
// entries), or "" if none is present.
func (doc *Document) Handle() Handle {
	for _, aka := range doc.AlsoKnownAs {
		if h, ok := strings.CutPrefix(aka, "at://"); ok {
			return Handle(h)
		}
	}
	return ""
}

// PDSEndpoint returns the personal data server endpoint, or "".
func (doc *Document) PDSEndpoint() string { return doc.serviceEndpoint(ServiceIDPDS) }

// LabelerEndpoint returns the labeler service endpoint, or "".
func (doc *Document) LabelerEndpoint() string { return doc.serviceEndpoint(ServiceIDLabeler) }

func (doc *Document) serviceEndpoint(id string) string {
	for _, s := range doc.Service {
		if s.ID == id {
			return s.Endpoint
		}
	}
	return ""
}

// SetService adds or replaces a service entry.
func (doc *Document) SetService(id, typ, endpoint string) {
	for i, s := range doc.Service {
		if s.ID == id {
			doc.Service[i] = ServiceEndpoint{ID: id, Type: typ, Endpoint: endpoint}
			return
		}
	}
	doc.Service = append(doc.Service, ServiceEndpoint{ID: id, Type: typ, Endpoint: endpoint})
}

// SetHandle replaces the primary handle in alsoKnownAs.
func (doc *Document) SetHandle(h Handle) {
	aka := "at://" + string(h)
	for i, s := range doc.AlsoKnownAs {
		if strings.HasPrefix(s, "at://") {
			doc.AlsoKnownAs[i] = aka
			return
		}
	}
	doc.AlsoKnownAs = append(doc.AlsoKnownAs, aka)
}

// SigningKey returns the document's first verification key, decoded.
func (doc *Document) SigningKey() (ed25519.PublicKey, error) {
	if len(doc.VerificationMethod) == 0 {
		return nil, errors.New("identity: document has no verification method")
	}
	return DecodePublicKeyMultibase(doc.VerificationMethod[0].PublicKeyMultibase)
}

// KeyPair wraps an ed25519 signing key used for repo commits and PLC
// operations.
type KeyPair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewKeyPairFromSeed derives a deterministic key pair from a 32-byte
// seed. Deterministic keys keep the synthetic world reproducible.
func NewKeyPairFromSeed(seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("identity: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &KeyPair{pub: priv.Public().(ed25519.PublicKey), priv: priv}, nil
}

// DeriveKeyPair derives a key pair from an arbitrary label by hashing
// it to a seed; convenient for simulated accounts.
func DeriveKeyPair(label string) *KeyPair {
	seed := sha256.Sum256([]byte("blueskies-key:" + label))
	kp, err := NewKeyPairFromSeed(seed[:])
	if err != nil {
		panic(err) // unreachable: seed is always 32 bytes
	}
	return kp
}

// Public returns the public key.
func (k *KeyPair) Public() ed25519.PublicKey { return k.pub }

// Sign signs msg.
func (k *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.priv, msg) }

// PublicMultibase renders the public key in multibase form ("z" +
// base32 here; the real network uses base58btc, which stdlib lacks —
// the prefix semantics are what matters).
func (k *KeyPair) PublicMultibase() string { return EncodePublicKeyMultibase(k.pub) }

// VerificationMethod renders the key as a DID-document entry.
func (k *KeyPair) VerificationMethod(controller DID) VerificationMethod {
	return VerificationMethod{
		ID:                 string(controller) + "#atproto",
		Type:               "Multikey",
		Controller:         string(controller),
		PublicKeyMultibase: k.PublicMultibase(),
	}
}

// EncodePublicKeyMultibase encodes an ed25519 public key.
func EncodePublicKeyMultibase(pub ed25519.PublicKey) string {
	return "z" + base32Sortable.EncodeToString(pub)
}

// DecodePublicKeyMultibase reverses EncodePublicKeyMultibase.
func DecodePublicKeyMultibase(s string) (ed25519.PublicKey, error) {
	if len(s) < 2 || s[0] != 'z' {
		return nil, fmt.Errorf("identity: bad multibase key %q", s)
	}
	raw, err := base32Sortable.DecodeString(s[1:])
	if err != nil {
		return nil, fmt.Errorf("identity: bad multibase key: %w", err)
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("identity: key length %d", len(raw))
	}
	return ed25519.PublicKey(raw), nil
}

// Verify checks an ed25519 signature.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}
