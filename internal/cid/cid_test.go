package cid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := SumCBOR([]byte("hello"))
	b := SumCBOR([]byte("hello"))
	if !a.Equal(b) {
		t.Fatalf("same content produced different CIDs: %s vs %s", a, b)
	}
	c := SumCBOR([]byte("world"))
	if a.Equal(c) {
		t.Fatalf("different content produced equal CIDs")
	}
}

func TestCodecDistinguishesCID(t *testing.T) {
	a := SumCBOR([]byte("x"))
	b := SumRaw([]byte("x"))
	if a.Equal(b) {
		t.Fatal("dag-cbor and raw CIDs of same bytes must differ")
	}
	if a.Codec() != DagCBOR || b.Codec() != Raw {
		t.Fatalf("codec mismatch: %v %v", a.Codec(), b.Codec())
	}
}

func TestStringFormat(t *testing.T) {
	c := SumCBOR([]byte("abc"))
	s := c.String()
	if !strings.HasPrefix(s, "b") {
		t.Fatalf("CID string must be base32 multibase (prefix b): %q", s)
	}
	if strings.ToLower(s) != s {
		t.Fatalf("CID string must be lowercase: %q", s)
	}
	// CIDv1 sha2-256 base32 strings are always 59 chars.
	if len(s) != 59 {
		t.Fatalf("unexpected CID string length %d: %q", len(s), s)
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := SumRaw([]byte("round trip"))
	parsed, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !parsed.Equal(orig) {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, orig)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	orig := SumCBOR([]byte("binary round trip"))
	parsed, err := Decode(orig.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !parsed.Equal(orig) {
		t.Fatalf("binary round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"z123",                // wrong multibase
		"b",                   // empty payload
		"b0123!!",             // invalid base32
		"bafyreihdwdcefgh4dq", // truncated digest
	}
	for _, tc := range cases {
		if _, err := Parse(tc); err == nil {
			t.Errorf("Parse(%q): expected error", tc)
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	raw := append(SumRaw([]byte("x")).Bytes(), 0x00)
	if _, err := Decode(raw); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
}

func TestUndefinedCID(t *testing.T) {
	var c CID
	if c.Defined() {
		t.Fatal("zero CID must be undefined")
	}
	if c.String() != "" || c.Bytes() != nil {
		t.Fatal("zero CID must stringify empty")
	}
	if _, err := c.MarshalText(); err == nil {
		t.Fatal("MarshalText of undefined CID must error")
	}
}

func TestTextMarshaling(t *testing.T) {
	orig := SumCBOR([]byte("text"))
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	var back CID
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	if !back.Equal(orig) {
		t.Fatal("text marshal round trip mismatch")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, raw bool) bool {
		var c CID
		if raw {
			c = SumRaw(data)
		} else {
			c = SumCBOR(data)
		}
		p, err := Parse(c.String())
		if err != nil {
			return false
		}
		d, err := Decode(c.Bytes())
		if err != nil {
			return false
		}
		return p.Equal(c) && d.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
