// Package cid implements Content IDentifiers (CIDv1) as used by the AT
// Protocol: a self-describing content address consisting of a version,
// a multicodec content type, and a sha2-256 multihash of the content.
//
// Only the subset required by atproto repositories is implemented:
// CIDv1 with the dag-cbor (0x71) or raw (0x55) codecs, sha2-256
// multihashes, and the base32-lower multibase ("b…") text encoding.
package cid

import (
	"bytes"
	"crypto/sha256"
	"encoding/base32"
	"errors"
	"fmt"
	"io"
)

// Codec identifies the multicodec content type of the addressed block.
type Codec uint64

// Multicodec codes used by atproto repositories.
const (
	// DagCBOR is the multicodec code for DAG-CBOR blocks (0x71).
	DagCBOR Codec = 0x71
	// Raw is the multicodec code for raw byte blocks (0x55).
	Raw Codec = 0x55
)

const (
	cidVersion1  = 1
	mhSHA256     = 0x12
	sha256Length = 32
)

// lowercase base32 without padding, per the "b" multibase prefix.
var base32Lower = base32.NewEncoding("abcdefghijklmnopqrstuvwxyz234567").WithPadding(base32.NoPadding)

// CID is a version-1 content identifier. The zero value is invalid and
// reported by Defined as false.
type CID struct {
	codec Codec
	hash  [sha256Length]byte
	set   bool
}

// Sum computes the CID of data under the given codec using sha2-256.
func Sum(codec Codec, data []byte) CID {
	return CID{codec: codec, hash: sha256.Sum256(data), set: true}
}

// SumCBOR computes the CID of a DAG-CBOR block.
func SumCBOR(data []byte) CID { return Sum(DagCBOR, data) }

// SumRaw computes the CID of a raw block.
func SumRaw(data []byte) CID { return Sum(Raw, data) }

// Defined reports whether c holds a parsed or computed CID (as opposed
// to the zero value).
func (c CID) Defined() bool { return c.set }

// Codec returns the multicodec content type of the CID.
func (c CID) Codec() Codec { return c.codec }

// Hash returns the sha2-256 digest carried by the CID.
func (c CID) Hash() [sha256Length]byte { return c.hash }

// Equal reports whether two CIDs are identical.
func (c CID) Equal(o CID) bool { return c == o }

// Bytes returns the binary form: <version><codec><multihash>.
func (c CID) Bytes() []byte {
	if !c.set {
		return nil
	}
	buf := make([]byte, 0, 4+2+sha256Length)
	buf = appendUvarint(buf, cidVersion1)
	buf = appendUvarint(buf, uint64(c.codec))
	buf = appendUvarint(buf, mhSHA256)
	buf = appendUvarint(buf, sha256Length)
	buf = append(buf, c.hash[:]...)
	return buf
}

// String returns the canonical text form: multibase base32-lower.
func (c CID) String() string {
	if !c.set {
		return ""
	}
	return "b" + base32Lower.EncodeToString(c.Bytes())
}

// MarshalText implements encoding.TextMarshaler.
func (c CID) MarshalText() ([]byte, error) {
	if !c.set {
		return nil, errors.New("cid: marshal of undefined CID")
	}
	return []byte(c.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *CID) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// Parse decodes the multibase text form of a CIDv1.
func Parse(s string) (CID, error) {
	if len(s) < 2 || s[0] != 'b' {
		return CID{}, fmt.Errorf("cid: unsupported multibase in %q", s)
	}
	raw, err := base32Lower.DecodeString(s[1:])
	if err != nil {
		return CID{}, fmt.Errorf("cid: invalid base32: %w", err)
	}
	return Decode(raw)
}

// Decode parses the binary form of a CIDv1.
func Decode(raw []byte) (CID, error) {
	r := bytes.NewReader(raw)
	version, err := readUvarint(r)
	if err != nil {
		return CID{}, err
	}
	if version != cidVersion1 {
		return CID{}, fmt.Errorf("cid: unsupported version %d", version)
	}
	codec, err := readUvarint(r)
	if err != nil {
		return CID{}, err
	}
	hashFn, err := readUvarint(r)
	if err != nil {
		return CID{}, err
	}
	if hashFn != mhSHA256 {
		return CID{}, fmt.Errorf("cid: unsupported multihash 0x%x", hashFn)
	}
	hashLen, err := readUvarint(r)
	if err != nil {
		return CID{}, err
	}
	if hashLen != sha256Length {
		return CID{}, fmt.Errorf("cid: bad sha2-256 length %d", hashLen)
	}
	var c CID
	c.codec = Codec(codec)
	if _, err := io.ReadFull(r, c.hash[:]); err != nil {
		return CID{}, fmt.Errorf("cid: truncated digest: %w", err)
	}
	if r.Len() != 0 {
		return CID{}, fmt.Errorf("cid: %d trailing bytes", r.Len())
	}
	c.set = true
	return c, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func readUvarint(r *bytes.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, errors.New("cid: truncated varint")
		}
		if shift >= 63 && b > 1 {
			return 0, errors.New("cid: varint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}
