// Package whois implements the WHOIS protocol (RFC 3912) and a
// registrar database, reproducing the paper's registrar-concentration
// measurement (§5, Table 2): a WHOIS scan extracting "Registrar IANA
// ID" fields for each registered domain name.
//
// WHOIS is trivially simple on the wire — a TCP connection, one query
// line, a free-text response — which is also why IANA IDs are not
// uniformly available: the paper could extract them for only 76 % of
// domains (ccTLD registries often omit them). The server reproduces
// that behaviour for ccTLD-registered names.
package whois

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registrar describes one accredited registrar.
type Registrar struct {
	IANAID int
	Name   string
}

// Registration is one registered domain's WHOIS data.
type Registration struct {
	Domain    string
	Registrar Registrar
	// CCTLDPolicy indicates a registry that omits the IANA ID from
	// public WHOIS output (locally accredited ccTLD registrars).
	CCTLDPolicy bool
	Created     time.Time
}

// DB is a thread-safe registration database.
type DB struct {
	mu   sync.RWMutex
	regs map[string]Registration
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{regs: make(map[string]Registration)} }

// Put inserts or replaces a registration.
func (db *DB) Put(reg Registration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.regs[strings.ToLower(reg.Domain)] = reg
}

// Get looks up a registration.
func (db *DB) Get(domain string) (Registration, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.regs[strings.ToLower(domain)]
	return r, ok
}

// Len reports the number of registrations.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.regs)
}

// Domains returns all registered domains, sorted.
func (db *DB) Domains() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.regs))
	for d := range db.regs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// render produces the WHOIS text for a registration. ccTLD-policy
// entries omit the IANA ID line, as many ccTLD registries do.
func render(reg Registration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Domain Name: %s\r\n", strings.ToUpper(reg.Domain))
	fmt.Fprintf(&sb, "Registrar: %s\r\n", reg.Registrar.Name)
	if !reg.CCTLDPolicy {
		fmt.Fprintf(&sb, "Registrar IANA ID: %d\r\n", reg.Registrar.IANAID)
	}
	if !reg.Created.IsZero() {
		fmt.Fprintf(&sb, "Creation Date: %s\r\n", reg.Created.UTC().Format(time.RFC3339))
	}
	sb.WriteString(">>> Last update of whois database <<<\r\n")
	return sb.String()
}

// Server is a WHOIS server over a DB.
type Server struct {
	db   *DB
	ln   net.Listener
	done chan struct{}
}

// NewServer starts a WHOIS server on a free loopback TCP port.
func NewServer(db *DB) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{db: db, ln: ln, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the server's TCP address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	close(s.done)
	return s.ln.Close()
}

func (s *Server) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	query := strings.ToLower(strings.TrimSpace(line))
	reg, ok := s.db.Get(query)
	if !ok {
		fmt.Fprintf(conn, "No match for %q.\r\n", query)
		return
	}
	_, _ = conn.Write([]byte(render(reg)))
}

// Client queries WHOIS servers.
type Client struct {
	// Timeout bounds each lookup; defaults to 3 s.
	Timeout time.Duration
}

// Lookup performs a raw WHOIS query against addr and returns the
// response text.
func (c *Client) Lookup(addr, domain string) (string, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\r\n", domain); err != nil {
		return "", err
	}
	var sb strings.Builder
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Record is the parsed result of a WHOIS lookup.
type Record struct {
	Domain        string
	RegistrarName string
	// IANAID is the registrar's IANA ID; 0 when absent from the
	// response (the ccTLD case the paper describes).
	IANAID int
	Found  bool
}

// ParseResponse extracts the fields the measurement needs from WHOIS
// response text.
func ParseResponse(domain, text string) Record {
	rec := Record{Domain: strings.ToLower(domain)}
	if strings.HasPrefix(text, "No match") {
		return rec
	}
	for _, line := range strings.Split(text, "\n") {
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.TrimSpace(strings.ToLower(key))
		value = strings.TrimSpace(value)
		switch key {
		case "domain name":
			rec.Found = true
		case "registrar":
			rec.RegistrarName = value
		case "registrar iana id":
			if id, err := strconv.Atoi(value); err == nil {
				rec.IANAID = id
			}
		}
	}
	return rec
}

// Scan looks up one domain and parses the result.
func (c *Client) Scan(addr, domain string) (Record, error) {
	text, err := c.Lookup(addr, domain)
	if err != nil {
		return Record{}, err
	}
	return ParseResponse(domain, text), nil
}

// PaperRegistrars returns the registrar population of Table 2, with
// IANA IDs as reported by the paper.
func PaperRegistrars() []Registrar {
	return []Registrar{
		{IANAID: 1068, Name: "NameCheap, Inc."},
		{IANAID: 1910, Name: "CloudFlare, Inc."},
		{IANAID: 895, Name: "Squarespace Domains"},
		{IANAID: 146, Name: "GoDaddy.com, LLC"},
		{IANAID: 1861, Name: "Porkbun, LLC"},
		{IANAID: 69, Name: "Tucows Domains Inc."},
		{IANAID: 49, Name: "GMO Internet Group"},
	}
}
