package whois

import (
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) (*DB, string) {
	t.Helper()
	db := NewDB()
	srv, err := NewServer(db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return db, srv.Addr()
}

func TestLookupRegisteredDomain(t *testing.T) {
	db, addr := testServer(t)
	db.Put(Registration{
		Domain:    "example.com",
		Registrar: Registrar{IANAID: 1068, Name: "NameCheap, Inc."},
		Created:   time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC),
	})
	var c Client
	rec, err := c.Scan(addr, "EXAMPLE.com")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Found {
		t.Fatal("domain should be found")
	}
	if rec.IANAID != 1068 || rec.RegistrarName != "NameCheap, Inc." {
		t.Fatalf("record = %+v", rec)
	}
}

func TestLookupMissingDomain(t *testing.T) {
	_, addr := testServer(t)
	var c Client
	rec, err := c.Scan(addr, "ghost.example")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Found || rec.IANAID != 0 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestCCTLDOmitsIANAID(t *testing.T) {
	db, addr := testServer(t)
	db.Put(Registration{
		Domain:      "beispiel.de",
		Registrar:   Registrar{IANAID: 49, Name: "Local DE Registrar"},
		CCTLDPolicy: true,
	})
	var c Client
	rec, err := c.Scan(addr, "beispiel.de")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Found {
		t.Fatal("ccTLD domain should be found")
	}
	if rec.IANAID != 0 {
		t.Fatalf("ccTLD response must omit IANA ID, got %d", rec.IANAID)
	}
	if rec.RegistrarName != "Local DE Registrar" {
		t.Fatalf("registrar name = %q", rec.RegistrarName)
	}
}

func TestParseResponseDirect(t *testing.T) {
	text := "Domain Name: FOO.NET\nRegistrar: Porkbun, LLC\nRegistrar IANA ID: 1861\n"
	rec := ParseResponse("foo.net", text)
	if !rec.Found || rec.IANAID != 1861 || rec.RegistrarName != "Porkbun, LLC" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestParseResponseMalformedID(t *testing.T) {
	text := "Domain Name: FOO.NET\nRegistrar IANA ID: not-a-number\n"
	rec := ParseResponse("foo.net", text)
	if rec.IANAID != 0 {
		t.Fatalf("IANAID = %d", rec.IANAID)
	}
}

func TestDBSemantics(t *testing.T) {
	db := NewDB()
	db.Put(Registration{Domain: "A.com", Registrar: Registrar{IANAID: 1}})
	db.Put(Registration{Domain: "a.COM", Registrar: Registrar{IANAID: 2}})
	if db.Len() != 1 {
		t.Fatalf("case-insensitive keying broken: len=%d", db.Len())
	}
	reg, ok := db.Get("a.com")
	if !ok || reg.Registrar.IANAID != 2 {
		t.Fatalf("get = %+v %v", reg, ok)
	}
	db.Put(Registration{Domain: "b.com"})
	doms := db.Domains()
	if len(doms) != 2 || doms[0] != "a.com" || doms[1] != "b.com" {
		t.Fatalf("domains = %v", doms)
	}
}

func TestPaperRegistrarsMatchTable2(t *testing.T) {
	regs := PaperRegistrars()
	if len(regs) != 7 {
		t.Fatalf("want 7 registrars, got %d", len(regs))
	}
	byID := map[int]string{}
	for _, r := range regs {
		byID[r.IANAID] = r.Name
	}
	if !strings.Contains(byID[1068], "NameCheap") {
		t.Fatalf("IANA 1068 = %q", byID[1068])
	}
	if !strings.Contains(byID[146], "GoDaddy") {
		t.Fatalf("IANA 146 = %q", byID[146])
	}
}

func TestConcurrentLookups(t *testing.T) {
	db, addr := testServer(t)
	db.Put(Registration{Domain: "x.com", Registrar: Registrar{IANAID: 7, Name: "R"}})
	done := make(chan error, 10)
	for i := 0; i < 10; i++ {
		go func() {
			var c Client
			_, err := c.Scan(addr, "x.com")
			done <- err
		}()
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
