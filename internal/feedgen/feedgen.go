// Package feedgen implements Feed Generators (§2, §7): services that
// consume the Firehose and curate bespoke feeds of post URIs, served
// via app.bsky.feed.getFeedSkeleton.
//
// The package models both self-hosted generators and the
// Feed-Generator-as-a-Service platforms the paper compares in Table 5
// (Skyfeed, Bluefeed, Blueskyfeeds, Goodfeeds, Blueskyfeedcreator),
// each with its exact feature set: which inputs a feed may consume and
// which filters it may apply (labels, language, regular expressions,
// …). Retention policies differ per feed (1–7 days or a post cap),
// which is why the paper could not collect complete historical feed
// contents.
package feedgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blueskies/internal/identity"
	"blueskies/internal/xrpc"
)

// PostView is the denormalized post representation feeds filter on.
type PostView struct {
	URI       string
	DID       string // author
	Text      string
	Langs     []string
	Tags      []string
	CreatedAt time.Time
	Labels    []string // labels currently applied (joined upstream)
	ImageAlts []string // alt text per attached image ("" = missing)
	Links     []string
	HasEmbed  bool
	RepostOf  string // URI when this is a repost
}

// Feature is one capability of a FGaaS platform (rows of Table 5).
type Feature string

// Input features.
const (
	InWholeNetwork Feature = "input:whole-network"
	InTags         Feature = "input:tags"
	InSingleUser   Feature = "input:single-user"
	InList         Feature = "input:list"
	InFeed         Feature = "input:feed"
	InSinglePost   Feature = "input:single-post"
	InLabels       Feature = "input:labels"
	InToken        Feature = "input:token"
	InSegment      Feature = "input:segment"
)

// Filter features.
const (
	FiltItem        Feature = "filter:item"
	FiltLabels      Feature = "filter:labels"
	FiltImageCount  Feature = "filter:image-count"
	FiltLinkCount   Feature = "filter:link-count"
	FiltRepostCount Feature = "filter:repost-count"
	FiltEmbed       Feature = "filter:embed"
	FiltDuplicate   Feature = "filter:duplicate"
	FiltUserList    Feature = "filter:list-of-users"
	FiltLanguage    Feature = "filter:language"
	FiltRegexText   Feature = "filter:regex-text"
	FiltRegexAlt    Feature = "filter:regex-image-alt"
	FiltRegexLink   Feature = "filter:regex-link"
)

// Platform is one Feed-Generator-as-a-Service provider.
type Platform struct {
	Name     string
	Features map[Feature]bool
	// Paid reports whether the platform offers paid tiers
	// (only Blueskyfeedcreator in Table 5).
	Paid bool
}

// Supports reports whether the platform offers a feature.
func (p *Platform) Supports(f Feature) bool { return p.Features[f] }

// Platforms returns the five FGaaS platforms with the feature sets of
// Table 5.
func Platforms() []*Platform {
	mk := func(name string, paid bool, feats ...Feature) *Platform {
		m := make(map[Feature]bool, len(feats))
		for _, f := range feats {
			m[f] = true
		}
		return &Platform{Name: name, Features: m, Paid: paid}
	}
	return []*Platform{
		mk("Skyfeed", false,
			InWholeNetwork, InTags, InSingleUser, InList, InFeed, InSinglePost, InLabels,
			FiltItem, FiltLabels, FiltImageCount, FiltLinkCount, FiltRepostCount,
			FiltEmbed, FiltDuplicate, FiltUserList, FiltLanguage,
			FiltRegexText, FiltRegexAlt, FiltRegexLink),
		mk("Bluefeed", false,
			InWholeNetwork, InTags, InSingleUser, InList, InFeed, InSinglePost, InLabels,
			FiltItem, FiltLabels, FiltUserList, FiltLanguage),
		mk("Blueskyfeeds", false,
			InWholeNetwork, InTags, InSingleUser, InList,
			FiltLabels, FiltUserList, FiltLanguage),
		mk("goodfeeds", false,
			InWholeNetwork, InTags, InSingleUser, InList, InToken,
			FiltLabels),
		mk("Blueskyfeedcreator", true,
			InSingleUser, InSinglePost, InSegment,
			FiltDuplicate),
	}
}

// PlatformByName finds a platform, or nil.
func PlatformByName(name string) *Platform {
	for _, p := range Platforms() {
		if strings.EqualFold(p.Name, name) {
			return p
		}
	}
	return nil
}

// Config defines one feed's curation rule.
type Config struct {
	// URI is the at:// URI of the generator record.
	URI string
	// DisplayName and Description mirror the declaration record.
	DisplayName string
	Description string

	// Inputs.
	WholeNetwork bool
	Tags         []string // match any
	Users        []string // author DIDs to include

	// Filters.
	RequireLangs  []string
	ExcludeLabels []string
	RequireLabels []string
	TextRegex     string
	AltRegex      string
	LinkRegex     string
	RequireImages bool
	DropDuplicate bool

	// Personalized feeds tailor output per requester and return
	// nothing for unknown accounts (the paper's "empty crawl account"
	// observation on the-algorithm / whats-hot).
	Personalized bool

	// Retention: 0 values mean unlimited.
	MaxAge   time.Duration
	MaxPosts int
}

// RequiredFeatures lists the platform features this config needs.
func (c *Config) RequiredFeatures() []Feature {
	var out []Feature
	if c.WholeNetwork {
		out = append(out, InWholeNetwork)
	}
	if len(c.Tags) > 0 {
		out = append(out, InTags)
	}
	if len(c.Users) > 0 {
		out = append(out, InSingleUser)
	}
	if len(c.RequireLangs) > 0 {
		out = append(out, FiltLanguage)
	}
	if len(c.ExcludeLabels) > 0 || len(c.RequireLabels) > 0 {
		out = append(out, FiltLabels)
	}
	if c.TextRegex != "" {
		out = append(out, FiltRegexText)
	}
	if c.AltRegex != "" {
		out = append(out, FiltRegexAlt)
	}
	if c.LinkRegex != "" {
		out = append(out, FiltRegexLink)
	}
	if c.RequireImages {
		out = append(out, FiltImageCount)
	}
	if c.DropDuplicate {
		out = append(out, FiltDuplicate)
	}
	return out
}

// CompatibleWith reports whether platform supports every feature the
// config needs (nil platform = self-hosted: everything allowed).
func (c *Config) CompatibleWith(p *Platform) error {
	if p == nil {
		return nil
	}
	for _, f := range c.RequiredFeatures() {
		if !p.Supports(f) {
			return fmt.Errorf("feedgen: platform %s does not support %s", p.Name, f)
		}
	}
	return nil
}

// feed is one hosted feed with its curated output.
type feed struct {
	cfg      Config
	re       *regexp.Regexp
	altRe    *regexp.Regexp
	linkRe   *regexp.Regexp
	posts    []PostView // newest last
	seenText map[string]bool
	likes    int
}

// Engine hosts feeds (one Engine per service/platform instance).
type Engine struct {
	name     string
	platform *Platform
	clock    func() time.Time

	mu    sync.RWMutex
	feeds map[string]*feed

	mux  *xrpc.Mux
	http *http.Server
	base string
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Name labels the engine (e.g. "Skyfeed" or a self-host DID).
	Name string
	// Platform constrains hostable feeds; nil = self-hosted.
	Platform *Platform
	// Clock supplies time; time.Now if nil.
	Clock func() time.Time
}

// NewEngine creates an engine.
func NewEngine(cfg EngineConfig) *Engine {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	e := &Engine{
		name:     cfg.Name,
		platform: cfg.Platform,
		clock:    clock,
		feeds:    make(map[string]*feed),
	}
	e.mux = xrpc.NewMux()
	e.register()
	return e
}

// Name returns the engine label.
func (e *Engine) Name() string { return e.name }

// Platform returns the hosting platform (nil for self-hosted).
func (e *Engine) Platform() *Platform { return e.platform }

// Start begins serving getFeedSkeleton on a loopback port.
func (e *Engine) Start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	e.base = "http://" + ln.Addr().String()
	e.http = &http.Server{Handler: e.mux}
	go func() { _ = e.http.Serve(ln) }()
	return nil
}

// URL returns the engine endpoint ("" before Start).
func (e *Engine) URL() string { return e.base }

// Close stops the engine.
func (e *Engine) Close() error {
	if e.http != nil {
		return e.http.Close()
	}
	return nil
}

// AddFeed registers a feed, validating platform compatibility and
// regexes.
func (e *Engine) AddFeed(cfg Config) error {
	if cfg.URI == "" {
		return fmt.Errorf("feedgen: feed needs a URI")
	}
	if _, err := identity.ParseURI(cfg.URI); err != nil {
		return err
	}
	if err := cfg.CompatibleWith(e.platform); err != nil {
		return err
	}
	f := &feed{cfg: cfg, seenText: make(map[string]bool)}
	var err error
	if cfg.TextRegex != "" {
		if f.re, err = regexp.Compile(cfg.TextRegex); err != nil {
			return fmt.Errorf("feedgen: text regex: %w", err)
		}
	}
	if cfg.AltRegex != "" {
		if f.altRe, err = regexp.Compile(cfg.AltRegex); err != nil {
			return fmt.Errorf("feedgen: alt regex: %w", err)
		}
	}
	if cfg.LinkRegex != "" {
		if f.linkRe, err = regexp.Compile(cfg.LinkRegex); err != nil {
			return fmt.Errorf("feedgen: link regex: %w", err)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.feeds[cfg.URI]; dup {
		return fmt.Errorf("feedgen: feed %s already registered", cfg.URI)
	}
	e.feeds[cfg.URI] = f
	return nil
}

// FeedURIs lists hosted feed URIs, sorted.
func (e *Engine) FeedURIs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.feeds))
	for uri := range e.feeds {
		out = append(out, uri)
	}
	sort.Strings(out)
	return out
}

// FeedCount reports the number of hosted feeds.
func (e *Engine) FeedCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.feeds)
}

// Ingest offers a post to every hosted feed (the firehose-consumption
// path).
func (e *Engine) Ingest(post PostView) {
	now := e.clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, f := range e.feeds {
		if f.matches(post) {
			if f.cfg.DropDuplicate {
				if f.seenText[post.Text] {
					continue
				}
				f.seenText[post.Text] = true
			}
			f.posts = append(f.posts, post)
			f.trim(now)
		}
	}
}

func (f *feed) trim(now time.Time) {
	if f.cfg.MaxPosts > 0 && len(f.posts) > f.cfg.MaxPosts {
		f.posts = f.posts[len(f.posts)-f.cfg.MaxPosts:]
	}
	if f.cfg.MaxAge > 0 {
		cutoff := now.Add(-f.cfg.MaxAge)
		i := 0
		for i < len(f.posts) && f.posts[i].CreatedAt.Before(cutoff) {
			i++
		}
		f.posts = f.posts[i:]
	}
}

func (f *feed) matches(p PostView) bool {
	cfg := &f.cfg
	// Input selection.
	selected := cfg.WholeNetwork
	if !selected && len(cfg.Users) > 0 {
		for _, u := range cfg.Users {
			if u == p.DID {
				selected = true
				break
			}
		}
	}
	if !selected && len(cfg.Tags) > 0 {
		for _, want := range cfg.Tags {
			for _, tag := range p.Tags {
				if strings.EqualFold(tag, want) {
					selected = true
					break
				}
			}
		}
	}
	if !selected {
		return false
	}
	// Filters.
	if len(cfg.RequireLangs) > 0 && !intersects(cfg.RequireLangs, p.Langs) {
		return false
	}
	if len(cfg.ExcludeLabels) > 0 && intersects(cfg.ExcludeLabels, p.Labels) {
		return false
	}
	if len(cfg.RequireLabels) > 0 && !intersects(cfg.RequireLabels, p.Labels) {
		return false
	}
	if cfg.RequireImages && len(p.ImageAlts) == 0 {
		return false
	}
	if f.re != nil && !f.re.MatchString(p.Text) {
		return false
	}
	if f.altRe != nil {
		ok := false
		for _, alt := range p.ImageAlts {
			if f.altRe.MatchString(alt) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.linkRe != nil {
		ok := false
		for _, link := range p.Links {
			if f.linkRe.MatchString(link) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Skeleton returns the newest-first post URIs of a feed, applying the
// personalization rule: personalized feeds return nothing for unknown
// requesters.
func (e *Engine) Skeleton(feedURI, requester string, limit int) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	f, ok := e.feeds[feedURI]
	if !ok {
		return nil, xrpc.ErrNotFound("unknown feed %s", feedURI)
	}
	if f.cfg.Personalized {
		known := false
		for _, u := range f.cfg.Users {
			if u == requester {
				known = true
				break
			}
		}
		if !known {
			return nil, nil // personalized: empty for crawler accounts
		}
	}
	if limit <= 0 {
		limit = 50
	}
	out := make([]string, 0, min(limit, len(f.posts)))
	for i := len(f.posts) - 1; i >= 0 && len(out) < limit; i-- {
		out = append(out, f.posts[i].URI)
	}
	return out, nil
}

// LikeCount support: the AppView tracks likes on generator records and
// reports them through getFeedGenerator; engines keep a counter so the
// synthetic world can exercise the "likes vs posts" analysis.
func (e *Engine) AddLike(feedURI string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.feeds[feedURI]; ok {
		f.likes++
	}
}

// Likes reports a feed's like counter.
func (e *Engine) Likes(feedURI string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if f, ok := e.feeds[feedURI]; ok {
		return f.likes
	}
	return 0
}

// PostCount reports a feed's current curated post count.
func (e *Engine) PostCount(feedURI string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if f, ok := e.feeds[feedURI]; ok {
		return len(f.posts)
	}
	return 0
}

func (e *Engine) register() {
	e.mux.Query("app.bsky.feed.getFeedSkeleton", func(_ context.Context, params url.Values, _ []byte) (any, error) {
		limit := 50
		if l := params.Get("limit"); l != "" {
			n, err := strconv.Atoi(l)
			if err != nil || n <= 0 {
				return nil, xrpc.ErrInvalidRequest("bad limit %q", l)
			}
			limit = n
		}
		uris, err := e.Skeleton(params.Get("feed"), params.Get("requester"), limit)
		if err != nil {
			return nil, err
		}
		type item struct {
			Post string `json:"post"`
		}
		items := make([]item, len(uris))
		for i, u := range uris {
			items[i] = item{Post: u}
		}
		return map[string]any{"feed": items}, nil
	})
	e.mux.Query("com.atproto.server.describeServer", func(_ context.Context, _ url.Values, _ []byte) (any, error) {
		return map[string]any{"name": e.name, "feeds": e.FeedCount()}, nil
	})
}
