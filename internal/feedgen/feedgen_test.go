package feedgen

import (
	"context"
	"fmt"
	"net/url"
	"testing"
	"time"

	"blueskies/internal/xrpc"
)

var ts = time.Date(2024, 4, 20, 0, 0, 0, 0, time.UTC)

const creatorDID = "did:plc:abcdefghijklmnopqrstuvwx"

func feedURI(rkey string) string {
	return "at://" + creatorDID + "/app.bsky.feed.generator/" + rkey
}

func post(i int, text string, langs ...string) PostView {
	return PostView{
		URI:       fmt.Sprintf("at://%s/app.bsky.feed.post/3k%011d", creatorDID, i),
		DID:       creatorDID,
		Text:      text,
		Langs:     langs,
		CreatedAt: ts.Add(time.Duration(i) * time.Minute),
	}
}

func TestTable5FeatureMatrix(t *testing.T) {
	platforms := Platforms()
	if len(platforms) != 5 {
		t.Fatalf("want 5 platforms, got %d", len(platforms))
	}
	sky := PlatformByName("Skyfeed")
	if sky == nil {
		t.Fatal("Skyfeed missing")
	}
	// Skyfeed is the ONLY platform with regex support (Table 5).
	for _, p := range platforms {
		hasRegex := p.Supports(FiltRegexText) || p.Supports(FiltRegexAlt) || p.Supports(FiltRegexLink)
		if (p.Name == "Skyfeed") != hasRegex {
			t.Errorf("platform %s regex support = %v", p.Name, hasRegex)
		}
	}
	// Only Blueskyfeedcreator is paid.
	for _, p := range platforms {
		if (p.Name == "Blueskyfeedcreator") != p.Paid {
			t.Errorf("platform %s paid = %v", p.Name, p.Paid)
		}
	}
	// goodfeeds is the only one with token input.
	for _, p := range platforms {
		if (p.Name == "goodfeeds") != p.Supports(InToken) {
			t.Errorf("platform %s token input = %v", p.Name, p.Supports(InToken))
		}
	}
}

func TestPlatformCompatibilityEnforced(t *testing.T) {
	regexCfg := Config{URI: feedURI("regex"), WholeNetwork: true, TextRegex: "ramen"}
	// Skyfeed hosts regex feeds.
	sky := NewEngine(EngineConfig{Name: "Skyfeed", Platform: PlatformByName("Skyfeed")})
	if err := sky.AddFeed(regexCfg); err != nil {
		t.Fatalf("Skyfeed must support regex: %v", err)
	}
	// goodfeeds must reject them.
	good := NewEngine(EngineConfig{Name: "goodfeeds", Platform: PlatformByName("goodfeeds")})
	if err := good.AddFeed(regexCfg); err == nil {
		t.Fatal("goodfeeds must reject regex feeds")
	}
	// Self-hosted engines accept anything.
	self := NewEngine(EngineConfig{Name: "self"})
	if err := self.AddFeed(Config{URI: feedURI("self"), WholeNetwork: true, TextRegex: "x", Personalized: true}); err != nil {
		t.Fatal(err)
	}
}

func TestIngestAndSkeleton(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test", Clock: func() time.Time { return ts.Add(100 * time.Minute) }})
	if err := e.AddFeed(Config{URI: feedURI("ramen"), WholeNetwork: true, TextRegex: "(?i)ramen"}); err != nil {
		t.Fatal(err)
	}
	e.Ingest(post(1, "I love Ramen noodles"))
	e.Ingest(post(2, "nothing to see"))
	e.Ingest(post(3, "ramen again"))

	uris, err := e.Skeleton(feedURI("ramen"), "", 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 2 {
		t.Fatalf("got %d posts", len(uris))
	}
	// Newest first.
	if uris[0] != post(3, "").URI {
		t.Fatalf("order wrong: %v", uris)
	}
}

func TestLanguageFilter(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	_ = e.AddFeed(Config{URI: feedURI("hebrew"), WholeNetwork: true, RequireLangs: []string{"he"}})
	e.Ingest(post(1, "shalom", "he"))
	e.Ingest(post(2, "hello", "en"))
	uris, _ := e.Skeleton(feedURI("hebrew"), "", 50)
	if len(uris) != 1 {
		t.Fatalf("got %v", uris)
	}
}

func TestLabelFilters(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	_ = e.AddFeed(Config{URI: feedURI("sfw"), WholeNetwork: true, ExcludeLabels: []string{"porn", "sexual"}})
	_ = e.AddFeed(Config{URI: feedURI("nsfw"), WholeNetwork: true, RequireLabels: []string{"porn"}})
	clean := post(1, "clean")
	dirty := post(2, "dirty")
	dirty.Labels = []string{"porn"}
	e.Ingest(clean)
	e.Ingest(dirty)
	if uris, _ := e.Skeleton(feedURI("sfw"), "", 50); len(uris) != 1 || uris[0] != clean.URI {
		t.Fatalf("sfw = %v", uris)
	}
	if uris, _ := e.Skeleton(feedURI("nsfw"), "", 50); len(uris) != 1 || uris[0] != dirty.URI {
		t.Fatalf("nsfw = %v", uris)
	}
}

func TestUserAndTagInputs(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	_ = e.AddFeed(Config{URI: feedURI("single"), Users: []string{"did:plc:author1"}})
	_ = e.AddFeed(Config{URI: feedURI("tagged"), Tags: []string{"furry"}})
	p1 := post(1, "from author1")
	p1.DID = "did:plc:author1"
	p2 := post(2, "tagged post")
	p2.Tags = []string{"Furry"}
	p3 := post(3, "unrelated")
	for _, p := range []PostView{p1, p2, p3} {
		e.Ingest(p)
	}
	if uris, _ := e.Skeleton(feedURI("single"), "", 50); len(uris) != 1 || uris[0] != p1.URI {
		t.Fatalf("single = %v", uris)
	}
	if uris, _ := e.Skeleton(feedURI("tagged"), "", 50); len(uris) != 1 || uris[0] != p2.URI {
		t.Fatalf("tagged = %v", uris)
	}
}

func TestPersonalizedFeedEmptyForCrawler(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	_ = e.AddFeed(Config{URI: feedURI("the-algorithm"), WholeNetwork: true, Personalized: true,
		Users: []string{"did:plc:subscriber"}})
	e.Ingest(post(1, "content"))
	// The crawler's empty account gets nothing…
	if uris, _ := e.Skeleton(feedURI("the-algorithm"), "did:plc:crawler", 50); len(uris) != 0 {
		t.Fatalf("crawler got %v", uris)
	}
	// …but a known subscriber does.
	if uris, _ := e.Skeleton(feedURI("the-algorithm"), "did:plc:subscriber", 50); len(uris) != 1 {
		t.Fatalf("subscriber got %v", uris)
	}
}

func TestRetentionByCountAndAge(t *testing.T) {
	now := ts
	e := NewEngine(EngineConfig{Name: "test", Clock: func() time.Time { return now }})
	_ = e.AddFeed(Config{URI: feedURI("cap"), WholeNetwork: true, MaxPosts: 3})
	for i := 0; i < 10; i++ {
		e.Ingest(post(i, "x"))
	}
	if n := e.PostCount(feedURI("cap")); n != 3 {
		t.Fatalf("cap feed has %d posts", n)
	}

	_ = e.AddFeed(Config{URI: feedURI("age"), WholeNetwork: true, MaxAge: 24 * time.Hour})
	old := post(100, "old")
	old.CreatedAt = ts.Add(-48 * time.Hour)
	fresh := post(101, "fresh")
	fresh.CreatedAt = ts.Add(-1 * time.Hour)
	now = ts
	e.Ingest(old)
	e.Ingest(fresh) // ingest of fresh triggers trim; old is beyond 24h
	if n := e.PostCount(feedURI("age")); n != 1 {
		t.Fatalf("age feed has %d posts", n)
	}
}

func TestDuplicateFilter(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	_ = e.AddFeed(Config{URI: feedURI("dedup"), WholeNetwork: true, DropDuplicate: true})
	e.Ingest(post(1, "same text"))
	e.Ingest(post(2, "same text"))
	e.Ingest(post(3, "different"))
	if n := e.PostCount(feedURI("dedup")); n != 2 {
		t.Fatalf("dedup feed has %d posts", n)
	}
}

func TestGetFeedSkeletonXRPC(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_ = e.AddFeed(Config{URI: feedURI("api"), WholeNetwork: true})
	e.Ingest(post(1, "first"))
	e.Ingest(post(2, "second"))

	client := xrpc.NewClient(e.URL())
	var out struct {
		Feed []struct {
			Post string `json:"post"`
		} `json:"feed"`
	}
	err := client.Query(context.Background(), "app.bsky.feed.getFeedSkeleton",
		url.Values{"feed": {feedURI("api")}, "limit": {"1"}}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Feed) != 1 || out.Feed[0].Post != post(2, "").URI {
		t.Fatalf("feed = %+v", out.Feed)
	}
	// Unknown feed → NotFound.
	err = client.Query(context.Background(), "app.bsky.feed.getFeedSkeleton",
		url.Values{"feed": {feedURI("ghost")}}, nil)
	if xe, ok := xrpc.AsError(err); !ok || xe.Name != "NotFound" {
		t.Fatalf("err = %v", err)
	}
}

func TestLikesCounter(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	_ = e.AddFeed(Config{URI: feedURI("liked"), WholeNetwork: true})
	for i := 0; i < 5; i++ {
		e.AddLike(feedURI("liked"))
	}
	if e.Likes(feedURI("liked")) != 5 {
		t.Fatalf("likes = %d", e.Likes(feedURI("liked")))
	}
}

func TestBadRegexRejected(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	if err := e.AddFeed(Config{URI: feedURI("bad"), WholeNetwork: true, TextRegex: "("}); err == nil {
		t.Fatal("bad regex must be rejected")
	}
}

func TestDuplicateFeedURIRejected(t *testing.T) {
	e := NewEngine(EngineConfig{Name: "test"})
	cfg := Config{URI: feedURI("dup"), WholeNetwork: true}
	if err := e.AddFeed(cfg); err != nil {
		t.Fatal(err)
	}
	if err := e.AddFeed(cfg); err == nil {
		t.Fatal("duplicate URI must be rejected")
	}
}
