// Ingest-path benchmark: prices the collector's level-one traversal
// fed from a partition block stream at both disk formats — the
// records/sec a collection pipeline sustains through decode plus
// accumulation, and the number the columnar v2 codec moves. CI runs
// it as a smoke alongside the other ablations.
package blueskies_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blueskies/internal/analysis"
	"blueskies/internal/core"
	"blueskies/internal/synth"
)

// BenchmarkCollectorIngest runs the full engine's level-one traversal
// over one spilled partition served from memory, per disk format.
// Each iteration decodes every block and folds every record; the
// records/s metric is the end-to-end ingest rate at that format.
func BenchmarkCollectorIngest(b *testing.B) {
	ds := synth.Generate(synth.Config{Scale: 2000, Seed: 1})
	parts, m := core.Split(ds, 1)
	records := ds.Counts().Total()
	for _, version := range []int{1, core.DiskFormatVersion} {
		dir := b.TempDir()
		if err := core.WriteCorpusVersion(dir, parts, m, version); err != nil {
			b.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, core.PartitionFileName(0)))
		if err != nil {
			b.Fatal(err)
		}
		info := m.Partitions[0]
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				src := &analysis.ReaderSource{
					Open: func() (*core.PartitionReader, error) {
						return core.NewPartitionReader(bytes.NewReader(data))
					},
					Base:    info.Base,
					Records: &info.Records,
					Name:    "ingest bench blocks",
				}
				world, _, _, err := analysis.NewFullEngine().RunLevelOne(src)
				if err != nil {
					b.Fatal(err)
				}
				if got := world.Counts().Total(); got != records {
					b.Fatalf("ingested %d records, want %d", got, records)
				}
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
