module blueskies

go 1.24
